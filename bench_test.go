// Benchmarks regenerating the paper's evaluation, one family per figure.
// Each benchmark measures the per-query cost of one cell of the figure's
// parameter grid on the synthetic stand-in datasets; `korbench -all`
// produces the full tables (see EXPERIMENTS.md).
//
// Run with:
//
//	go test -bench=. -benchmem
package kor

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"kor/internal/core"
	"kor/internal/experiments"
)

var benchCfg = experiments.Config{Seed: 2012, Queries: 4}

var (
	flickrOnce sync.Once
	flickrDS   *experiments.Dataset
	flickrErr  error

	roadOnce sync.Once
	roadDS   map[int]*experiments.Dataset
)

func benchFlickr(b *testing.B) *experiments.Dataset {
	b.Helper()
	flickrOnce.Do(func() {
		flickrDS, flickrErr = experiments.NewFlickrDataset(benchCfg)
	})
	if flickrErr != nil {
		b.Fatalf("flickr dataset: %v", flickrErr)
	}
	return flickrDS
}

func benchRoad(b *testing.B, nodes int) *experiments.Dataset {
	b.Helper()
	roadOnce.Do(func() { roadDS = make(map[int]*experiments.Dataset) })
	ds, ok := roadDS[nodes]
	if !ok {
		ds = experiments.NewRoadDataset(benchCfg, nodes)
		roadDS[nodes] = ds
	}
	return ds
}

// runSet executes one measured pass over the query set per b.N iteration.
func runSet(b *testing.B, ds *experiments.Dataset, queries []core.Query, algo experiments.Algorithm) {
	b.Helper()
	if len(queries) == 0 {
		b.Skip("no queries generated for this cell")
	}
	// One untimed pass warms the oracle caches — the stand-in for the
	// paper's offline pre-processing.
	experiments.Measure(ds, queries, algo)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range queries {
			_, _ = invoke(ds, algo, q)
		}
	}
	b.ReportMetric(float64(len(queries)), "queries/op")
}

func invoke(ds *experiments.Dataset, algo experiments.Algorithm, q core.Query) (core.Result, error) {
	switch algo.Kind {
	case experiments.KindOSScaling:
		return ds.Searcher.OSScaling(q, algo.Opts)
	case experiments.KindBucketBound:
		return ds.Searcher.BucketBound(q, algo.Opts)
	case experiments.KindGreedy:
		return ds.Searcher.Greedy(q, algo.Opts)
	case experiments.KindExact:
		return ds.Searcher.Exact(q, algo.Opts)
	case experiments.KindBruteForce:
		return ds.Searcher.BruteForce(q, 2_000_000)
	}
	panic("unknown kind")
}

func algoVariants(width2 bool) []experiments.Algorithm {
	oss := core.DefaultOptions()
	bb := core.DefaultOptions()
	g := core.DefaultOptions()
	variants := []experiments.Algorithm{
		{Name: "OSScaling", Opts: oss, Kind: experiments.KindOSScaling},
		{Name: "BucketBound", Opts: bb, Kind: experiments.KindBucketBound},
		{Name: "Greedy1", Opts: g, Kind: experiments.KindGreedy},
	}
	if width2 {
		g2 := core.DefaultOptions()
		g2.Width = 2
		variants = append(variants, experiments.Algorithm{Name: "Greedy2", Opts: g2, Kind: experiments.KindGreedy})
	}
	return variants
}

// BenchmarkFig04RuntimeVsKeywords — Figure 4: runtime as the keyword count
// grows, Flickr-like dataset, Δ=6.
func BenchmarkFig04RuntimeVsKeywords(b *testing.B) {
	ds := benchFlickr(b)
	for _, m := range []int{2, 6, 10} {
		queries := ds.Queries(benchCfg, m, 6)
		for _, algo := range algoVariants(true) {
			b.Run(fmt.Sprintf("%s/m=%d", algo.Name, m), func(b *testing.B) {
				runSet(b, ds, queries, algo)
			})
		}
	}
}

// BenchmarkFig05RuntimeVsDelta — Figure 5: runtime as Δ grows, m=6.
func BenchmarkFig05RuntimeVsDelta(b *testing.B) {
	ds := benchFlickr(b)
	for _, delta := range []float64{3, 9, 15} {
		queries := ds.Queries(benchCfg, 6, delta)
		for _, algo := range algoVariants(true) {
			b.Run(fmt.Sprintf("%s/delta=%v", algo.Name, delta), func(b *testing.B) {
				runSet(b, ds, queries, algo)
			})
		}
	}
}

// BenchmarkFig06EpsilonSweep — Figure 6: OSScaling runtime versus ε.
func BenchmarkFig06EpsilonSweep(b *testing.B) {
	ds := benchFlickr(b)
	queries := ds.Queries(benchCfg, 6, 6)
	for _, eps := range []float64{0.1, 0.5, 0.9} {
		opts := core.DefaultOptions()
		opts.Epsilon = eps
		b.Run(fmt.Sprintf("eps=%v", eps), func(b *testing.B) {
			runSet(b, ds, queries, experiments.Algorithm{Opts: opts, Kind: experiments.KindOSScaling})
		})
	}
}

// BenchmarkFig08BetaSweep — Figure 8: BucketBound runtime versus β.
func BenchmarkFig08BetaSweep(b *testing.B) {
	ds := benchFlickr(b)
	queries := ds.Queries(benchCfg, 6, 6)
	for _, beta := range []float64{1.2, 1.6, 2.0} {
		opts := core.DefaultOptions()
		opts.Beta = beta
		b.Run(fmt.Sprintf("beta=%v", beta), func(b *testing.B) {
			runSet(b, ds, queries, experiments.Algorithm{Opts: opts, Kind: experiments.KindBucketBound})
		})
	}
}

// BenchmarkFig14EqualBound — Figure 14: the two label algorithms at the
// same theoretical bound r (OSScaling ε=1−1/r, BucketBound ε=0.5, β=r/2).
func BenchmarkFig14EqualBound(b *testing.B) {
	ds := benchFlickr(b)
	queries := ds.Queries(benchCfg, 6, 6)
	for _, bound := range []float64{2, 6, 10} {
		ossOpts := core.DefaultOptions()
		ossOpts.Epsilon = 1 - 1/bound
		bbOpts := core.DefaultOptions()
		bbOpts.Beta = bound / 2
		if bbOpts.Beta <= 1 {
			bbOpts.Beta = 1.01
		}
		b.Run(fmt.Sprintf("OSScaling/bound=%v", bound), func(b *testing.B) {
			runSet(b, ds, queries, experiments.Algorithm{Opts: ossOpts, Kind: experiments.KindOSScaling})
		})
		b.Run(fmt.Sprintf("BucketBound/bound=%v", bound), func(b *testing.B) {
			runSet(b, ds, queries, experiments.Algorithm{Opts: bbOpts, Kind: experiments.KindBucketBound})
		})
	}
}

// BenchmarkFig16TopK — Figure 16: the KkR query as k grows.
func BenchmarkFig16TopK(b *testing.B) {
	ds := benchFlickr(b)
	queries := ds.Queries(benchCfg, 6, 6)
	for _, k := range []int{1, 3, 5} {
		opts := core.DefaultOptions()
		opts.K = k
		b.Run(fmt.Sprintf("OSScaling/k=%d", k), func(b *testing.B) {
			runSet(b, ds, queries, experiments.Algorithm{Opts: opts, Kind: experiments.KindOSScaling})
		})
		b.Run(fmt.Sprintf("BucketBound/k=%d", k), func(b *testing.B) {
			runSet(b, ds, queries, experiments.Algorithm{Opts: opts, Kind: experiments.KindBucketBound})
		})
	}
}

// BenchmarkFig17Scalability — Figure 17: road networks of growing size,
// m=6, Δ=30 km.
func BenchmarkFig17Scalability(b *testing.B) {
	for _, nodes := range []int{5000, 10000, 20000} {
		ds := benchRoad(b, nodes)
		queries := ds.Queries(benchCfg, 6, 30)
		for _, algo := range algoVariants(false) {
			b.Run(fmt.Sprintf("%s/n=%d", algo.Name, nodes), func(b *testing.B) {
				runSet(b, ds, queries, algo)
			})
		}
	}
}

// BenchmarkFig18RoadKeywords — Figure 18: keyword sweep on the 5k road
// network.
func BenchmarkFig18RoadKeywords(b *testing.B) {
	ds := benchRoad(b, 5000)
	for _, m := range []int{2, 6, 10} {
		queries := ds.Queries(benchCfg, m, 9)
		for _, algo := range algoVariants(false) {
			b.Run(fmt.Sprintf("%s/m=%d", algo.Name, m), func(b *testing.B) {
				runSet(b, ds, queries, algo)
			})
		}
	}
}

// BenchmarkFig19RoadDelta — Figure 19: Δ sweep on the 5k road network.
func BenchmarkFig19RoadDelta(b *testing.B) {
	ds := benchRoad(b, 5000)
	for _, delta := range []float64{3, 9, 15} {
		queries := ds.Queries(benchCfg, 6, delta)
		for _, algo := range algoVariants(false) {
			b.Run(fmt.Sprintf("%s/delta=%v", algo.Name, delta), func(b *testing.B) {
				runSet(b, ds, queries, algo)
			})
		}
	}
}

// BenchmarkExactBaseline — §4.1's brute-force gap: the exhaustive baseline
// against OSScaling on budgets small enough for it to finish.
func BenchmarkExactBaseline(b *testing.B) {
	ds := benchFlickr(b)
	queries := ds.Queries(benchCfg, 2, 2)
	b.Run("OSScaling", func(b *testing.B) {
		runSet(b, ds, queries, experiments.Algorithm{Opts: core.DefaultOptions(), Kind: experiments.KindOSScaling})
	})
	b.Run("BruteForce", func(b *testing.B) {
		runSet(b, ds, queries, experiments.Algorithm{Kind: experiments.KindBruteForce})
	})
	b.Run("Exact", func(b *testing.B) {
		runSet(b, ds, queries, experiments.Algorithm{Opts: core.DefaultOptions(), Kind: experiments.KindExact})
	})
}

// BenchmarkAblationStrategies — the §4.2.1 claim that the optimization
// strategies buy 3–5×: OSScaling with and without them.
func BenchmarkAblationStrategies(b *testing.B) {
	ds := benchFlickr(b)
	queries := ds.Queries(benchCfg, 6, 6)
	for _, v := range []struct {
		name   string
		s1, s2 bool
	}{{"both", false, false}, {"noS1", true, false}, {"noS2", false, true}, {"neither", true, true}} {
		opts := core.DefaultOptions()
		opts.DisableStrategy1 = v.s1
		opts.DisableStrategy2 = v.s2
		b.Run(v.name, func(b *testing.B) {
			runSet(b, ds, queries, experiments.Algorithm{Opts: opts, Kind: experiments.KindOSScaling})
		})
	}
}

// Shared fixture for the concurrency benchmarks: one Engine on the lazy
// oracle (the concurrent-contention configuration) over a 2k-node road
// network, plus a fixed query set.
var (
	parOnce sync.Once
	parEng  *Engine
	parErr  error
	parQs   []Query
)

func parallelFixture(b *testing.B) (*Engine, []Query) {
	b.Helper()
	parOnce.Do(func() {
		g := SyntheticRoadNetwork(2012, 2000)
		parEng, parErr = NewEngine(g, &EngineConfig{Oracle: OracleLazy})
		if parErr != nil {
			return // report via parErr so later benchmarks fail cleanly too
		}
		parQs = concurrencyQueries(b, parEng, 16)
		// Warm the sweep caches so the measured region reflects steady-state
		// serving, as the figure benchmarks do.
		for _, q := range parQs {
			_, _ = parEng.Search(q, DefaultOptions())
		}
	})
	if parErr != nil {
		b.Fatal(parErr)
	}
	return parEng, parQs
}

// BenchmarkThroughputSerial — baseline: one goroutine draining the query
// set against the shared engine. Compare with BenchmarkThroughputParallel
// to see the concurrency win on multi-core hardware.
func BenchmarkThroughputSerial(b *testing.B) {
	eng, queries := parallelFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := queries[i%len(queries)]
		_, _ = eng.Search(q, DefaultOptions())
	}
}

// BenchmarkThroughputParallel — GOMAXPROCS goroutines sharing one Engine
// and one lazy oracle, the korserve serving pattern.
func BenchmarkThroughputParallel(b *testing.B) {
	eng, queries := parallelFixture(b)
	var next atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			q := queries[int(next.Add(1))%len(queries)]
			_, _ = eng.Search(q, DefaultOptions())
		}
	})
}

// BenchmarkThroughputParallelMixed — as above, but the goroutines mix the
// three approximation algorithms the way a live query stream would.
func BenchmarkThroughputParallelMixed(b *testing.B) {
	eng, queries := parallelFixture(b)
	var next atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := int(next.Add(1))
			q := queries[i%len(queries)]
			switch i % 3 {
			case 0:
				_, _ = eng.BucketBound(q, DefaultOptions())
			case 1:
				_, _ = eng.OSScaling(q, DefaultOptions())
			default:
				_, _ = eng.Greedy(q, DefaultOptions())
			}
		}
	})
}

// BenchmarkSearchBatch — the batch API end to end: one call answering the
// whole query set on a worker pool.
func BenchmarkSearchBatch(b *testing.B) {
	eng, queries := parallelFixture(b)
	requests := make([]Request, len(queries))
	for i, q := range queries {
		requests[i] = Request{From: q.From, To: q.To, Keywords: q.Keywords, Budget: q.Budget}
	}
	ctx := context.Background()
	pars := []int{1, runtime.GOMAXPROCS(0)}
	if pars[1] == 1 {
		pars = pars[:1] // single-CPU host: one level, no duplicate sub-benchmark
	}
	for _, par := range pars {
		b.Run(fmt.Sprintf("parallelism=%d", par), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eng.SearchBatch(ctx, requests, par); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(queries)), "queries/op")
		})
	}
}

// Result-cache benchmarks: the same request stream against one engine with
// the cache disabled and one with it enabled. The pair is the regression
// guard for Engine.Run's fast path — korbench's smoke mode gates ns/op in
// CI, these keep the cached/uncached gap visible in `go test -bench`.
var (
	cacheOnce sync.Once
	cacheEng  *Engine // CacheSize > 0
	plainEng  *Engine // no cache
	cacheErr  error
	cacheQs   []Request
)

func cacheFixture(b *testing.B) (*Engine, *Engine, []Request) {
	b.Helper()
	cacheOnce.Do(func() {
		g := SyntheticRoadNetwork(2012, 2000)
		plainEng, cacheErr = NewEngine(g, &EngineConfig{Oracle: OracleLazy})
		if cacheErr != nil {
			return
		}
		cacheEng, cacheErr = NewEngine(g, &EngineConfig{Oracle: OracleLazy, CacheSize: 4096})
		if cacheErr != nil {
			return
		}
		for _, q := range concurrencyQueries(b, plainEng, 16) {
			cacheQs = append(cacheQs, Request{From: q.From, To: q.To, Keywords: q.Keywords, Budget: q.Budget})
		}
		ctx := context.Background()
		for _, req := range cacheQs { // warm sweep caches and the result cache
			_, _ = plainEng.Run(ctx, req)
			_, _ = cacheEng.Run(ctx, req)
		}
	})
	if cacheErr != nil {
		b.Fatal(cacheErr)
	}
	return plainEng, cacheEng, cacheQs
}

// BenchmarkRunUncached — Engine.Run with caching disabled: every request
// pays for a full search.
func BenchmarkRunUncached(b *testing.B) {
	eng, _, requests := cacheFixture(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Run(ctx, requests[i%len(requests)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunCached — the same stream answered from the result cache.
func BenchmarkRunCached(b *testing.B) {
	_, eng, requests := cacheFixture(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := eng.Run(ctx, requests[i%len(requests)])
		if err != nil {
			b.Fatal(err)
		}
		if !resp.Cached {
			b.Fatal("expected a cache hit on a warmed key")
		}
	}
}

// BenchmarkRunCoalesced — a stampede of one identical request on the
// uncached engine: concurrent Runs fold into whatever search is in flight
// via the engine's single-flight, so most operations wait on a shared
// search instead of running their own. Contrast with BenchmarkRunUncached
// (serial, every request pays) and BenchmarkRunCached (warm result cache).
func BenchmarkRunCoalesced(b *testing.B) {
	eng, _, requests := cacheFixture(b)
	req := requests[0]
	ctx := context.Background()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := eng.Run(ctx, req); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationOracles — the three τ/σ oracle implementations serving
// the same OSScaling workload: dense tables (the paper's pre-processing),
// lazy memoized sweeps, and the §6 partitioned design.
func BenchmarkAblationOracles(b *testing.B) {
	base := benchRoad(b, 1500)
	queries := base.Queries(benchCfg, 4, 12)
	for _, variant := range experiments.OracleVariants(base.Graph) {
		ds := &experiments.Dataset{
			Name:         base.Name,
			Graph:        base.Graph,
			Index:        base.Index,
			Searcher:     core.NewSearcher(base.Graph, variant.Oracle, base.Index),
			DeltaSweep:   base.DeltaSweep,
			DefaultDelta: base.DefaultDelta,
			Planar:       true,
		}
		b.Run("oracle="+variant.Name, func(b *testing.B) {
			runSet(b, ds, queries, experiments.Algorithm{Opts: core.DefaultOptions(), Kind: experiments.KindOSScaling})
		})
	}
}
