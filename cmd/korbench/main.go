// Command korbench regenerates the paper's evaluation: every figure of §4
// as a text table, on the synthetic stand-ins for the paper's datasets.
//
// Usage:
//
//	korbench -all                      # every experiment (minutes)
//	korbench -fig 4                    # one experiment
//	korbench -fig 17 -queries 8       # smaller workload
//	korbench -list                     # available experiment ids
//
// See EXPERIMENTS.md for the paper-versus-measured discussion.
package main

import (
	"flag"
	"fmt"
	"os"

	"kor/internal/experiments"
)

func main() {
	var (
		fig     = flag.String("fig", "", "experiment id to run (see -list)")
		all     = flag.Bool("all", false, "run every experiment")
		list    = flag.Bool("list", false, "list experiment ids")
		queries = flag.Int("queries", 16, "queries per set (paper: 50)")
		seed    = flag.Int64("seed", 2012, "workload seed")
		quiet   = flag.Bool("quiet", false, "suppress progress logging")
	)
	flag.Parse()

	if *list {
		for _, r := range experiments.Runners() {
			fmt.Printf("%-20s %s\n", r.ID, r.Title)
		}
		return
	}

	cfg := experiments.Config{Seed: *seed, Queries: *queries}
	if !*quiet {
		cfg.Log = os.Stderr
	}

	switch {
	case *all:
		if err := experiments.RunAll(cfg, os.Stdout); err != nil {
			fatal(err)
		}
	case *fig != "":
		if err := experiments.Run(*fig, cfg, os.Stdout); err != nil {
			fatal(err)
		}
	default:
		fmt.Fprintln(os.Stderr, "korbench: pass -all, -fig <id> or -list")
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "korbench:", err)
	os.Exit(1)
}
