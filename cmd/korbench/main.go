// Command korbench regenerates the paper's evaluation and records the
// repository's performance trajectory.
//
// Figure mode renders every experiment of §4 as a text table on the
// synthetic stand-ins for the paper's datasets:
//
//	korbench -all                      # every experiment (minutes)
//	korbench -fig 4                    # one experiment
//	korbench -fig 17 -queries 8       # smaller workload
//	korbench -list                     # available experiment ids
//
// Bench mode measures the fixed serving workloads and emits the
// machine-readable report committed as BENCH_<rev>.json (per-algorithm
// ns/op, labels expanded, oracle sweeps, allocations):
//
//	korbench -bench -bench-out BENCH_dev.json
//	korbench -bench -smoke -bench-out BENCH_ci.json -baseline BENCH_ci_baseline.json
//	korbench -table BENCH_dev.json    # render a report as Markdown
//
// With -baseline the run exits non-zero when any shared (workload,
// algorithm) cell regressed past 2x ns/op, or when a cell's query
// failure count grew — failures are deterministic, so any increase is a
// behavior change, not noise, and the report records the first failure's
// reason alongside the count. This is the CI guard.
//
// See EXPERIMENTS.md for the paper-versus-measured discussion.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"kor/internal/experiments"
)

func main() {
	var (
		fig     = flag.String("fig", "", "experiment id to run (see -list)")
		all     = flag.Bool("all", false, "run every experiment")
		list    = flag.Bool("list", false, "list experiment ids")
		queries = flag.Int("queries", 16, "queries per set (paper: 50)")
		seed    = flag.Int64("seed", 2012, "workload seed")
		quiet   = flag.Bool("quiet", false, "suppress progress logging")

		bench    = flag.Bool("bench", false, "run the serving benchmark suite and emit a JSON report")
		smoke    = flag.Bool("smoke", false, "bench: CI-sized datasets (comparable only to other smoke reports)")
		iters    = flag.Int("iters", 0, "bench: measured passes per query set (default 3)")
		benchOut = flag.String("bench-out", "-", "bench: report destination (- = stdout)")
		baseline = flag.String("baseline", "", "bench: baseline report; exit non-zero on >2x ns/op regression")
		table    = flag.String("table", "", "render an existing bench report as a Markdown table and exit")
	)
	flag.Parse()

	switch {
	case *list:
		for _, r := range experiments.Runners() {
			fmt.Printf("%-20s %s\n", r.ID, r.Title)
		}
		return
	case *table != "":
		report, err := experiments.ReadBenchReport(*table)
		if err != nil {
			fatal(err)
		}
		fmt.Print(experiments.BenchMarkdown(report))
		return
	case *bench:
		runBench(experiments.BenchOptions{Seed: *seed, Iters: *iters, Smoke: *smoke}, *benchOut, *baseline, *quiet)
		return
	}

	cfg := experiments.Config{Seed: *seed, Queries: *queries}
	if !*quiet {
		cfg.Log = os.Stderr
	}

	switch {
	case *all:
		if err := experiments.RunAll(cfg, os.Stdout); err != nil {
			fatal(err)
		}
	case *fig != "":
		if err := experiments.Run(*fig, cfg, os.Stdout); err != nil {
			fatal(err)
		}
	default:
		fmt.Fprintln(os.Stderr, "korbench: pass -all, -fig <id>, -list, -bench or -table <report>")
		flag.Usage()
		os.Exit(2)
	}
}

// benchRegressionRatio is the CI gate: fail when a cell's ns/op exceeds this
// multiple of the committed baseline.
const benchRegressionRatio = 2.0

func runBench(opts experiments.BenchOptions, out, baselinePath string, quiet bool) {
	// An io.Writer must be assigned a concrete value only when non-nil: a
	// typed-nil *os.File would defeat RunBench's nil check.
	var log io.Writer
	if !quiet {
		log = os.Stderr
	}
	report, err := experiments.RunBench(opts, log)
	if err != nil {
		fatal(err)
	}
	if err := experiments.WriteBenchReport(report, out); err != nil {
		fatal(err)
	}
	if baselinePath == "" {
		return
	}
	base, err := experiments.ReadBenchReport(baselinePath)
	if err != nil {
		fatal(err)
	}
	if base.Smoke != report.Smoke {
		fatal(fmt.Errorf("baseline %s and this run measure different dataset sizes (smoke=%v vs %v); compare like with like",
			baselinePath, base.Smoke, report.Smoke))
	}
	regressions := experiments.CompareBench(base, report, benchRegressionRatio)
	if len(regressions) == 0 {
		fmt.Fprintf(os.Stderr, "korbench: no >%.1fx regressions vs %s\n", benchRegressionRatio, baselinePath)
		return
	}
	fmt.Fprintf(os.Stderr, "korbench: %d regression(s) vs %s:\n", len(regressions), baselinePath)
	for _, r := range regressions {
		fmt.Fprintf(os.Stderr, "  %s\n", r)
	}
	os.Exit(1)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "korbench:", err)
	os.Exit(1)
}
