// Command korrouter is the scatter-gather front of a sharded korserve
// cluster. kordata -shard cuts a graph into region shards; one or more
// korserve replicas serve each shard file; korrouter speaks the same /v1
// surface as a single korserve and fans each query out to the shards whose
// keyword postings can answer it (scatter), merging the candidate routes
// under the core planner's ordering (gather).
//
// Usage:
//
//	korrouter -shardmap city.shardmap.json \
//	          -backends "0=http://10.0.0.1:8080,0=http://10.0.0.2:8080,1=http://10.0.1.1:8080" \
//	          [-addr :8080] [-timeout 15s] [-probe-interval 5s]
//
// Replication: POST /v1/admin/patch ships the korapi.Delta to every replica
// of every shard. The snapshot fingerprint each replica reports — in every
// query response and in /v1/stats — is the consistency check: a replica
// that diverges from its shard's consensus is quarantined (shed from the
// scatter set, visible in /v1/stats and /metrics) until a later probe or
// patch observes it back on the expected fingerprint.
//
// Endpoints: GET/POST /v1/route, POST /v1/batch, GET /v1/nodes/{id},
// GET /v1/keywords, GET /v1/stats (cluster block included), GET /metrics,
// POST /v1/admin/patch. Errors are the korapi envelope; overload and
// whole-cluster unavailability answer 429/503 with a Retry-After header,
// exactly like a single korserve — partial shard failures never surface as
// a bare 502.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"kor/internal/cluster"
	"kor/internal/metrics"
)

func main() {
	var (
		mapPath   = flag.String("shardmap", "", "shard map written by kordata -shard (required)")
		backends  = flag.String("backends", "", "comma-separated shard=url replica list, e.g. \"0=http://h1:8080,1=http://h2:8080\" (required)")
		addr      = flag.String("addr", ":8080", "listen address")
		timeout   = flag.Duration("timeout", 15*time.Second, "per-query scatter deadline across shard backends (0 disables)")
		probeIv   = flag.Duration("probe-interval", 5*time.Second, "replica health/fingerprint probe interval (0 disables probing)")
		batchPar  = flag.Int("batch-parallelism", 0, "concurrent queries per /v1/batch (0 = number of shards ×4)")
		drain     = flag.Duration("drain", 15*time.Second, "shutdown grace period for in-flight requests")
		retryBase = flag.Int("retry-after", 1, "default Retry-After seconds on 429/503 when the shards supply none")
	)
	flag.Parse()
	if *mapPath == "" || *backends == "" {
		fmt.Fprintln(os.Stderr, "korrouter: -shardmap and -backends are required")
		flag.Usage()
		os.Exit(2)
	}

	shardMap, err := cluster.LoadShardMap(*mapPath)
	if err != nil {
		log.Fatalf("korrouter: %v", err)
	}
	pools, err := parseBackends(*backends, shardMap)
	if err != nil {
		log.Fatalf("korrouter: %v", err)
	}
	expected := make(map[int]string, len(shardMap.Shards))
	for _, s := range shardMap.Shards {
		expected[s.ID] = s.Fingerprint
	}
	client := &http.Client{Timeout: 0} // per-request contexts carry the deadline
	pool := cluster.NewPool(client, pools, expected)

	reg := metrics.NewRegistry()
	rt := newRouter(shardMap, pool, client, routerConfig{
		timeout:    *timeout,
		maxPar:     *batchPar,
		retryAfter: *retryBase,
		registry:   reg,
	})

	// Boot probe so /v1/stats is honest immediately, then the periodic loop.
	probeCtx, stopProbe := context.WithCancel(context.Background())
	defer stopProbe()
	func() {
		ctx, cancel := context.WithTimeout(probeCtx, 5*time.Second)
		defer cancel()
		pool.ProbeAll(ctx)
	}()
	if *probeIv > 0 {
		go func() {
			tick := time.NewTicker(*probeIv)
			defer tick.Stop()
			for {
				select {
				case <-probeCtx.Done():
					return
				case <-tick.C:
					ctx, cancel := context.WithTimeout(probeCtx, *probeIv)
					pool.ProbeAll(ctx)
					cancel()
				}
			}
		}()
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           rt.routes(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		replicas := 0
		for _, urls := range pools {
			replicas += len(urls)
		}
		log.Printf("korrouter: %d shards, %d replicas, %d nodes, listening on %s",
			len(shardMap.Shards), replicas, shardMap.Nodes, *addr)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		log.Fatalf("korrouter: %v", err)
	case <-ctx.Done():
	}
	log.Print("korrouter: shutting down, draining in-flight requests")
	shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		log.Printf("korrouter: shutdown: %v", err)
	}
}

// parseBackends decodes the -backends flag against the shard map: every
// entry is shard=url, every shard in the map needs at least one replica,
// and no entry may name a shard outside the map.
func parseBackends(spec string, m *cluster.ShardMap) (map[int][]string, error) {
	out := make(map[int][]string)
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		eq := strings.IndexByte(entry, '=')
		if eq < 0 {
			return nil, fmt.Errorf("backend entry %q is not shard=url", entry)
		}
		shard, err := strconv.Atoi(entry[:eq])
		if err != nil {
			return nil, fmt.Errorf("backend entry %q: bad shard ID", entry)
		}
		if shard < 0 || shard >= len(m.Shards) {
			return nil, fmt.Errorf("backend entry %q: shard map has no shard %d", entry, shard)
		}
		url := strings.TrimSuffix(entry[eq+1:], "/")
		if !strings.HasPrefix(url, "http://") && !strings.HasPrefix(url, "https://") {
			return nil, fmt.Errorf("backend entry %q: url must be http(s)", entry)
		}
		out[shard] = append(out[shard], url)
	}
	for _, s := range m.Shards {
		if len(out[s.ID]) == 0 {
			return nil, fmt.Errorf("shard %d has no backend", s.ID)
		}
	}
	return out, nil
}
