package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"kor"
	"kor/internal/cluster"
	"kor/internal/metrics"
	"kor/korapi"
)

// shardBackend is a minimal korserve-equivalent over a kor.Engine: just the
// endpoints the router talks to, built on the same korapi conversions the
// real server uses, so the wire behavior matches.
type shardBackend struct {
	eng *kor.Engine
	srv *httptest.Server
}

func newShardBackend(t *testing.T, g *kor.Graph) *shardBackend {
	t.Helper()
	eng, err := kor.NewEngine(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	b := &shardBackend{eng: eng}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/route", b.handleRoute)
	mux.HandleFunc("GET /v1/stats", b.handleStats)
	mux.HandleFunc("POST /v1/admin/patch", b.handlePatch)
	mux.HandleFunc("GET /v1/keywords", b.handleKeywords)
	mux.HandleFunc("GET /v1/nodes/{id}", b.handleNode)
	b.srv = httptest.NewServer(mux)
	t.Cleanup(b.srv.Close)
	return b
}

func (b *shardBackend) handleRoute(w http.ResponseWriter, r *http.Request) {
	var wreq korapi.Request
	if err := json.NewDecoder(r.Body).Decode(&wreq); err != nil {
		korapi.WriteError(w, &korapi.Error{Code: korapi.CodeBadRequest, Message: err.Error()})
		return
	}
	kreq, err := wreq.KorRequest()
	if err != nil {
		korapi.WriteError(w, &korapi.Error{Code: korapi.CodeBadRequest, Message: err.Error()})
		return
	}
	resp, err := b.eng.Run(r.Context(), kreq)
	if apiErr := korapi.ErrorFrom(err); apiErr != nil {
		korapi.WriteError(w, apiErr)
		return
	}
	out := korapi.ResponseFromKor(b.eng.Graph(), resp, wreq.Metrics)
	if warn := korapi.WarningFrom(err); warn != nil {
		out.Warning = warn
	}
	korapi.WriteJSON(w, out)
}

func (b *shardBackend) handleStats(w http.ResponseWriter, _ *http.Request) {
	snap := korapi.SnapshotFromKor(b.eng.Snapshot())
	korapi.WriteJSON(w, korapi.Stats{Snapshot: &snap})
}

func (b *shardBackend) handlePatch(w http.ResponseWriter, r *http.Request) {
	var d korapi.Delta
	if err := json.NewDecoder(r.Body).Decode(&d); err != nil {
		korapi.WriteError(w, &korapi.Error{Code: korapi.CodeBadRequest, Message: err.Error()})
		return
	}
	kd, err := d.KorDelta()
	if err != nil {
		korapi.WriteError(w, &korapi.Error{Code: korapi.CodeBadRequest, Message: err.Error()})
		return
	}
	info, err := b.eng.Patch(kd)
	if err != nil {
		korapi.WriteError(w, &korapi.Error{Code: korapi.CodeBadRequest, Message: err.Error()})
		return
	}
	g := b.eng.Graph()
	korapi.WriteJSON(w, korapi.AdminResponse{
		Snapshot: korapi.SnapshotFromKor(info), Nodes: g.NumNodes(), Edges: g.NumEdges(),
	})
}

func (b *shardBackend) handleKeywords(w http.ResponseWriter, r *http.Request) {
	limit, _ := strconv.Atoi(r.URL.Query().Get("limit"))
	suggestions, err := b.eng.Suggest(r.URL.Query().Get("prefix"), limit)
	if err != nil {
		korapi.WriteError(w, &korapi.Error{Code: korapi.CodeInternal, Message: err.Error()})
		return
	}
	out := korapi.KeywordsResponse{Keywords: make([]korapi.Keyword, len(suggestions))}
	for i, sg := range suggestions {
		out.Keywords[i] = korapi.Keyword{Keyword: sg.Keyword, Nodes: sg.Nodes}
	}
	korapi.WriteJSON(w, out)
}

func (b *shardBackend) handleNode(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 32)
	g := b.eng.Graph()
	if err != nil || !g.Valid(kor.NodeID(id)) {
		korapi.WriteError(w, &korapi.Error{Code: korapi.CodeNotFound, Message: "no such node"})
		return
	}
	korapi.WriteJSON(w, korapi.Node{ID: id, Degree: g.OutDegree(kor.NodeID(id))})
}

// testCity is the 4-node façade city korserve's own tests use.
func testCity(t *testing.T) *kor.Graph {
	t.Helper()
	b := kor.NewBuilder()
	hotel := b.AddNode("hotel")
	cafe := b.AddNode("cafe", "jazz")
	park := b.AddNode("park")
	mall := b.AddNode("mall", "cafe")
	edges := []struct {
		from, to kor.NodeID
		o, c     float64
	}{
		{hotel, cafe, 0.7, 1.2}, {cafe, park, 0.3, 0.8}, {park, hotel, 0.5, 1.0},
		{cafe, mall, 0.4, 0.5}, {mall, park, 0.6, 0.9}, {hotel, park, 2.0, 0.4},
		{park, cafe, 0.3, 0.8},
	}
	for _, e := range edges {
		if err := b.AddEdge(e.from, e.to, e.o, e.c); err != nil {
			t.Fatal(err)
		}
	}
	return b.MustBuild()
}

// testCluster wires a two-shard cluster behind a router: replicasPerShard
// backends per shard, each serving its shard's cut graph, plus the single
// unsharded engine as the equivalence oracle.
type testCluster struct {
	g        *kor.Graph
	cut      *cluster.Cut
	backends [][]*shardBackend
	pool     *cluster.Pool
	rt       *router
	srv      *httptest.Server
	single   *kor.Engine
}

func newTestCluster(t *testing.T, g *kor.Graph, cellSize, halo, replicasPerShard int) *testCluster {
	t.Helper()
	cut, err := cluster.CutGraph(g, cluster.CutConfig{Shards: 2, CellSize: cellSize, Halo: halo})
	if err != nil {
		t.Fatal(err)
	}
	if len(cut.Graphs) != 2 {
		t.Fatalf("cut produced %d shards, want 2", len(cut.Graphs))
	}
	tc := &testCluster{g: g, cut: cut}
	backendURLs := make(map[int][]string)
	expected := make(map[int]string)
	for s, sg := range cut.Graphs {
		expected[s] = cut.Map.Shards[s].Fingerprint
		var row []*shardBackend
		for r := 0; r < replicasPerShard; r++ {
			b := newShardBackend(t, sg)
			row = append(row, b)
			backendURLs[s] = append(backendURLs[s], b.srv.URL)
		}
		tc.backends = append(tc.backends, row)
	}
	tc.pool = cluster.NewPool(http.DefaultClient, backendURLs, expected)
	tc.rt = newRouter(cut.Map, tc.pool, http.DefaultClient, routerConfig{
		timeout:    10 * time.Second,
		retryAfter: 1,
		registry:   metrics.NewRegistry(),
	})
	tc.srv = httptest.NewServer(tc.rt.routes())
	t.Cleanup(tc.srv.Close)
	single, err := kor.NewEngine(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	tc.single = single
	return tc
}

func (tc *testCluster) post(t *testing.T, path string, in, out any) *http.Response {
	t.Helper()
	buf, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(tc.srv.URL+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("decoding %s body %q: %v", path, body, err)
		}
	}
	return resp
}

// singleAnswer runs the wire request on the unsharded oracle engine.
func (tc *testCluster) singleAnswer(t *testing.T, wreq korapi.Request) (*korapi.Response, *korapi.Error) {
	t.Helper()
	kreq, err := wreq.KorRequest()
	if err != nil {
		t.Fatalf("oracle request: %v", err)
	}
	resp, err := tc.single.Run(context.Background(), kreq)
	if apiErr := korapi.ErrorFrom(err); apiErr != nil {
		return nil, apiErr
	}
	out := korapi.ResponseFromKor(tc.single.Graph(), resp, wreq.Metrics)
	return &out, nil
}

// sameRoutes compares node sequences and objectives.
func sameRoutes(a, b []korapi.Route) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if cluster.RouteKey(a[i]) != cluster.RouteKey(b[i]) || a[i].Objective != b[i].Objective {
			return false
		}
	}
	return true
}

// TestRouterEquivalenceAllAlgorithms is the tentpole acceptance check: for
// every registry algorithm, the two-shard cluster answers exactly what a
// single korserve on the unsharded graph answers — same route signatures,
// same objectives — under an exhaustive halo.
func TestRouterEquivalenceAllAlgorithms(t *testing.T) {
	tc := newTestCluster(t, testCity(t), 2, 10, 1)
	queries := []korapi.Request{
		{From: 0, To: 2, Keywords: []string{"cafe"}, Budget: 6, K: 3},
		{From: 0, To: 2, Keywords: []string{"cafe", "jazz"}, Budget: 6, K: 2},
		{From: 0, To: 2, Keywords: []string{"jazz"}, Budget: 1}, // tight budget
		{From: 1, To: 1, Keywords: []string{"cafe"}, Budget: 4}, // round trip
	}
	for _, alg := range kor.Algorithms() {
		for qi, base := range queries {
			wreq := base
			wreq.Algorithm = string(alg)
			want, wantErr := tc.singleAnswer(t, wreq)

			if wantErr != nil {
				var gotErr korapi.ErrorEnvelope
				resp := tc.post(t, "/v1/route", wreq, &gotErr)
				if resp.StatusCode != wantErr.Code.HTTPStatus() || gotErr.Error.Code != wantErr.Code {
					t.Errorf("%s q%d: router %d/%s, oracle %s", alg, qi, resp.StatusCode, gotErr.Error.Code, wantErr.Code)
				}
				continue
			}
			var got korapi.Response
			resp := tc.post(t, "/v1/route", wreq, &got)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("%s q%d: router status %d, oracle succeeded", alg, qi, resp.StatusCode)
				continue
			}
			if got.Algorithm != want.Algorithm {
				t.Errorf("%s q%d: algorithm %q vs %q", alg, qi, got.Algorithm, want.Algorithm)
			}
			if !sameRoutes(got.Routes, want.Routes) {
				t.Errorf("%s q%d: routes diverge\nrouter: %+v\noracle: %+v", alg, qi, got.Routes, want.Routes)
			}
		}
	}
}

// TestRouterEquivalenceRoadNetwork repeats the equivalence check on a
// 150-node synthetic road network for the default planner and top-k.
func TestRouterEquivalenceRoadNetwork(t *testing.T) {
	g := kor.SyntheticRoadNetwork(2012, 150)
	tc := newTestCluster(t, g, 16, 1000, 1)
	kw := tc.cut.Map.Shards[0].Keywords
	if len(kw) == 0 {
		t.Fatal("shard 0 carries no keywords")
	}
	budget := g.MaxBudget() * 20
	queries := []korapi.Request{
		{From: 0, To: int64(g.NumNodes() - 1), Keywords: kw[:1], Budget: budget},
		{From: 3, To: 77, Keywords: kw[:1], Budget: budget, Algorithm: "topk", K: 3},
		{From: 5, To: 120, Keywords: []string{kw[len(kw)/2]}, Budget: budget, Algorithm: "greedy"},
	}
	for qi, wreq := range queries {
		want, wantErr := tc.singleAnswer(t, wreq)
		var got korapi.Response
		resp := tc.post(t, "/v1/route", wreq, nil)
		if wantErr != nil {
			if resp.StatusCode != wantErr.Code.HTTPStatus() {
				t.Errorf("q%d: router status %d, oracle error %s", qi, resp.StatusCode, wantErr.Code)
			}
			continue
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("q%d: router status %d, oracle succeeded", qi, resp.StatusCode)
		}
		tc.post(t, "/v1/route", wreq, &got)
		if !sameRoutes(got.Routes, want.Routes) {
			t.Errorf("q%d: routes diverge\nrouter: %+v\noracle: %+v", qi, got.Routes, want.Routes)
		}
	}
}

// TestRouterDeltaReplication: a delta POSTed to the router lands on every
// replica of every shard, and within each shard all replicas converge to
// the same fingerprint with nobody quarantined.
func TestRouterDeltaReplication(t *testing.T) {
	tc := newTestCluster(t, testCity(t), 2, 10, 2)
	delta := korapi.Delta{UpdateEdges: []korapi.DeltaEdge{{From: 0, To: 1, Objective: 0.9, Budget: 1.2}}}

	var out korapi.ClusterAdminResponse
	resp := tc.post(t, "/v1/admin/patch", delta, &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("patch status %d", resp.StatusCode)
	}
	if out.Quarantined != 0 {
		t.Fatalf("patch left %d replicas quarantined", out.Quarantined)
	}
	if len(out.Shards) != 2 {
		t.Fatalf("patch reports %d shards", len(out.Shards))
	}
	for _, sa := range out.Shards {
		if len(sa.Replicas) != 2 {
			t.Fatalf("shard %d reports %d replicas, want 2", sa.Shard, len(sa.Replicas))
		}
		for _, ra := range sa.Replicas {
			if ra.Error != nil {
				t.Fatalf("shard %d replica %s failed: %v", sa.Shard, ra.URL, ra.Error)
			}
			if ra.Snapshot.Fingerprint != sa.ExpectedFingerprint {
				t.Errorf("shard %d replica %s fingerprint %s, expected consensus %s",
					sa.Shard, ra.URL, ra.Snapshot.Fingerprint, sa.ExpectedFingerprint)
			}
		}
		// And the fingerprints match the engines' live state.
		for _, b := range tc.backends[sa.Shard] {
			if got := fmt.Sprintf("%016x", b.eng.Graph().Fingerprint()); got != sa.ExpectedFingerprint {
				t.Errorf("shard %d backend fingerprint %s, consensus %s", sa.Shard, got, sa.ExpectedFingerprint)
			}
		}
	}
	// Queries keep flowing after the patch.
	var rr korapi.Response
	if resp := tc.post(t, "/v1/route", korapi.Request{From: 0, To: 2, Keywords: []string{"cafe"}, Budget: 6}, &rr); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-patch route status %d", resp.StatusCode)
	}
}

// TestRouterQuarantineAndReadmit: a replica patched behind the router's
// back is quarantined on the next probe, queries keep flowing on the
// consistent replica, and replaying the same delta through the router
// converges the shard and readmits the stray.
func TestRouterQuarantineAndReadmit(t *testing.T) {
	tc := newTestCluster(t, testCity(t), 2, 10, 2)
	delta := korapi.Delta{UpdateEdges: []korapi.DeltaEdge{{From: 0, To: 1, Objective: 0.9, Budget: 1.2}}}

	// Divergence: patch one replica of shard 0 directly.
	kd, err := delta.KorDelta()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tc.backends[0][0].eng.Patch(kd); err != nil {
		t.Fatal(err)
	}
	tc.pool.ProbeAll(context.Background())
	if got := tc.pool.QuarantinedReplicas(); got != 1 {
		t.Fatalf("quarantined = %d after divergence, want 1", got)
	}

	// The cluster still answers, on the consistent replica.
	var rr korapi.Response
	if resp := tc.post(t, "/v1/route", korapi.Request{From: 0, To: 2, Keywords: []string{"cafe"}, Budget: 6}, &rr); resp.StatusCode != http.StatusOK {
		t.Fatalf("route status %d with one quarantined replica", resp.StatusCode)
	}

	// Stats surface the quarantine.
	var st korapi.Stats
	getJSON(t, tc.srv.URL+"/v1/stats", &st)
	if st.Cluster == nil || st.Cluster.Quarantined != 1 {
		t.Fatalf("stats cluster block %+v, want quarantined 1", st.Cluster)
	}

	// Convergence: the same (idempotent) delta through the router lands on
	// everyone; the stray replica ends on the consensus fingerprint.
	var out korapi.ClusterAdminResponse
	if resp := tc.post(t, "/v1/admin/patch", delta, &out); resp.StatusCode != http.StatusOK {
		t.Fatalf("convergence patch status %d", resp.StatusCode)
	}
	if out.Quarantined != 0 {
		t.Fatalf("still %d quarantined after convergence", out.Quarantined)
	}
	if got := tc.pool.QuarantinedReplicas(); got != 0 {
		t.Fatalf("pool still quarantines %d after convergence", got)
	}
}

// TestRouterPartialFailure: a dead shard must not take down queries the
// surviving shards can answer, and a query that needed the dead shard sheds
// with the korapi envelope plus Retry-After — never a bare 502.
func TestRouterPartialFailure(t *testing.T) {
	tc := newTestCluster(t, testCity(t), 2, 10, 1)
	// Kill every replica of one shard.
	deadShard := tc.cut.Map.OwnerOf(0)
	for _, b := range tc.backends[deadShard] {
		b.srv.Close()
	}

	// "cafe" lives on both shards (full halo): the survivor answers.
	var rr korapi.Response
	resp := tc.post(t, "/v1/route", korapi.Request{From: 0, To: 2, Keywords: []string{"cafe"}, Budget: 6}, &rr)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("partial failure: status %d, want 200 from the surviving shard", resp.StatusCode)
	}
	if len(rr.Routes) == 0 {
		t.Fatal("partial failure: no routes from the surviving shard")
	}

	// Kill the rest: full unavailability answers 503 + envelope + Retry-After.
	for s := range tc.backends {
		for _, b := range tc.backends[s] {
			b.srv.Close()
		}
	}
	var env korapi.ErrorEnvelope
	resp = tc.post(t, "/v1/route", korapi.Request{From: 0, To: 2, Keywords: []string{"cafe"}, Budget: 6}, &env)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("total failure: status %d, want 503", resp.StatusCode)
	}
	if env.Error.Code != korapi.CodeUnavailable {
		t.Fatalf("total failure: code %q, want unavailable", env.Error.Code)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("total failure: no Retry-After header")
	}
}

// TestRouterBatch: per-request outcomes come back inline, mixed with
// errors, like a single korserve.
func TestRouterBatch(t *testing.T) {
	tc := newTestCluster(t, testCity(t), 2, 10, 1)
	breq := korapi.BatchRequest{Requests: []korapi.Request{
		{From: 0, To: 2, Keywords: []string{"cafe"}, Budget: 6},
		{From: 0, To: 2, Keywords: []string{"no_such_keyword"}, Budget: 6},
	}}
	var out korapi.BatchResponse
	if resp := tc.post(t, "/v1/batch", breq, &out); resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d", resp.StatusCode)
	}
	if len(out.Results) != 2 {
		t.Fatalf("batch returned %d results", len(out.Results))
	}
	if out.Results[0].Response == nil || len(out.Results[0].Response.Routes) == 0 {
		t.Fatalf("batch slot 0: %+v, want routes", out.Results[0])
	}
	if out.Results[1].Error == nil || out.Results[1].Error.Code != korapi.CodeUnknownKeyword {
		t.Fatalf("batch slot 1: %+v, want unknown_keyword inline", out.Results[1])
	}
}

// TestRouterSurface covers the remaining unified endpoints: stats shape,
// keyword merge, node forwarding, GET route and metrics exposition.
func TestRouterSurface(t *testing.T) {
	tc := newTestCluster(t, testCity(t), 2, 10, 1)

	var st korapi.Stats
	getJSON(t, tc.srv.URL+"/v1/stats", &st)
	if st.Role != "router" || st.Nodes != 4 || st.Cluster == nil {
		t.Fatalf("stats %+v, want role router over 4 nodes with a cluster block", st)
	}
	if st.Cluster.Replicas != 2 || st.Cluster.Healthy != 2 {
		t.Fatalf("cluster block %+v, want 2 healthy replicas", st.Cluster)
	}

	var kws korapi.KeywordsResponse
	getJSON(t, tc.srv.URL+"/v1/keywords?prefix=ca&limit=5", &kws)
	found := false
	for _, kw := range kws.Keywords {
		if kw.Keyword == "cafe" {
			found = true
		}
	}
	if !found {
		t.Fatalf("keywords %+v, want cafe", kws.Keywords)
	}

	var node korapi.Node
	getJSON(t, tc.srv.URL+"/v1/nodes/1", &node)
	if node.ID != 1 {
		t.Fatalf("node forward returned %+v", node)
	}

	var rr korapi.Response
	getJSON(t, tc.srv.URL+"/v1/route?from=0&to=2&keywords=cafe&budget=6", &rr)
	if len(rr.Routes) == 0 {
		t.Fatal("GET route returned no routes")
	}

	resp, err := http.Get(tc.srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"korrouter_http_requests_total",
		"korrouter_scatter_total",
		"korrouter_replicas_quarantined 0",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestRouterKeywordCountsExact pins router /v1/keywords counts to the
// unsharded engine's: with a small halo every shard's closure overlaps its
// neighbour, so shard-local counts neither sum nor max to the global count —
// the router must serve the shard map's owned-node sums instead. Before the
// fix the merge kept the maximum shard-local count, a lower bound.
func TestRouterKeywordCountsExact(t *testing.T) {
	g := kor.SyntheticRoadNetwork(2012, 300)
	tc := newTestCluster(t, g, 40, 1, 1)

	// The cut must actually split some keyword's nodes across both shards,
	// otherwise this test cannot distinguish sum from max.
	split := false
	for kw, n := range tc.cut.Map.Shards[0].KeywordOwned {
		if n > 0 && tc.cut.Map.Shards[1].KeywordOwned[kw] > 0 {
			split = true
			break
		}
	}
	if !split {
		t.Fatal("cut did not split any keyword across shards; pick different parameters")
	}

	for _, prefix := range []string{"", "a", "k"} {
		var got korapi.KeywordsResponse
		getJSON(t, tc.srv.URL+"/v1/keywords?prefix="+prefix+"&limit=200", &got)
		want, err := tc.single.Suggest(prefix, 200)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Keywords) != len(want) {
			t.Fatalf("prefix %q: router returned %d keywords, unsharded %d", prefix, len(got.Keywords), len(want))
		}
		for i, kw := range got.Keywords {
			if kw.Keyword != want[i].Keyword || kw.Nodes != want[i].Nodes {
				t.Errorf("prefix %q: keyword %d = %s/%d, unsharded %s/%d",
					prefix, i, kw.Keyword, kw.Nodes, want[i].Keyword, want[i].Nodes)
			}
		}
	}
}

func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(body, out); err != nil {
		t.Fatalf("decoding %s body %q: %v", url, body, err)
	}
}

// TestParseBackends covers the -backends flag decoder.
func TestParseBackends(t *testing.T) {
	m := &cluster.ShardMap{Shards: []cluster.ShardInfo{{ID: 0}, {ID: 1}}}
	got, err := parseBackends("0=http://a:1, 1=http://b:2 ,0=http://c:3/", m)
	if err != nil {
		t.Fatal(err)
	}
	if len(got[0]) != 2 || len(got[1]) != 1 || got[0][1] != "http://c:3" {
		t.Fatalf("parsed %+v", got)
	}
	for _, bad := range []string{
		"",                   // shard 0 and 1 uncovered
		"0=http://a",         // shard 1 uncovered
		"0=http://a,1=ftp:x", // bad scheme
		"2=http://a",         // unknown shard
		"x=http://a",         // bad ID
		"http://a",           // not shard=url
	} {
		if _, err := parseBackends(bad, m); err == nil {
			t.Errorf("parseBackends(%q) accepted", bad)
		}
	}
}
