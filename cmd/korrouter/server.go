package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	neturl "net/url"
	"sort"
	"strconv"
	"sync"
	"time"

	"kor/internal/cluster"
	"kor/internal/metrics"
	"kor/korapi"
)

// router is the scatter-gather HTTP front: it owns the shard map (static),
// the replica pool (dynamic health/quarantine state) and the instruments.
type router struct {
	shardMap *cluster.ShardMap
	pool     *cluster.Pool
	client   *http.Client

	timeout    time.Duration
	maxPar     int
	retryAfter int

	reg *metrics.Registry
	met *routerMetrics
}

type routerConfig struct {
	// timeout bounds one scattered query across all its shard legs.
	timeout time.Duration
	// maxPar bounds concurrent queries inside one /v1/batch (0 = shards ×4).
	maxPar int
	// retryAfter is the Retry-After floor (seconds) on 429/503 answers.
	retryAfter int
	registry   *metrics.Registry
}

// routerMetrics are the scatter-gather instruments.
type routerMetrics struct {
	requests *metrics.CounterVec   // korrouter_http_requests_total{endpoint,code}
	latency  *metrics.HistogramVec // korrouter_http_request_seconds{endpoint}
	scatter  *metrics.CounterVec   // korrouter_scatter_total{outcome}
	fanout   *metrics.Histogram    // korrouter_scatter_fanout
}

func newRouter(m *cluster.ShardMap, pool *cluster.Pool, client *http.Client, cfg routerConfig) *router {
	rt := &router{
		shardMap:   m,
		pool:       pool,
		client:     client,
		timeout:    cfg.timeout,
		maxPar:     cfg.maxPar,
		retryAfter: cfg.retryAfter,
		reg:        cfg.registry,
	}
	if rt.maxPar <= 0 {
		rt.maxPar = 4 * len(m.Shards)
	}
	if rt.retryAfter <= 0 {
		rt.retryAfter = 1
	}
	if rt.reg != nil {
		rt.met = &routerMetrics{
			requests: rt.reg.CounterVec("korrouter_http_requests_total",
				"HTTP requests served by the router, by endpoint and status code.", "endpoint", "code"),
			latency: rt.reg.HistogramVec("korrouter_http_request_seconds",
				"Router HTTP request wall time in seconds, by endpoint.", nil, "endpoint"),
			scatter: rt.reg.CounterVec("korrouter_scatter_total",
				"Per-shard scatter leg outcomes (ok, error, unavailable, mismatch).", "outcome"),
			fanout: rt.reg.Histogram("korrouter_scatter_fanout",
				"Shards touched per scattered query.",
				[]float64{1, 2, 3, 4, 6, 8, 12, 16, 24, 32}),
		}
		rt.reg.GaugeFunc("korrouter_replicas_quarantined",
			"Replicas shed from the scatter set for fingerprint divergence.",
			func() float64 { return float64(pool.QuarantinedReplicas()) })
		rt.reg.GaugeFunc("korrouter_replicas_unhealthy",
			"Replicas currently unreachable.",
			func() float64 { return float64(pool.UnhealthyReplicas()) })
		rt.reg.GaugeFunc("korrouter_shards",
			"Shards in the serving map.",
			func() float64 { return float64(len(m.Shards)) })
	}
	return rt
}

// routes builds the unified /v1 surface. The router deliberately speaks the
// same endpoints as a single korserve so clients (and korload) need no
// cluster awareness.
func (rt *router) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/route", rt.instrument("route", rt.handleRouteGet))
	mux.HandleFunc("POST /v1/route", rt.instrument("route", rt.handleRoutePost))
	mux.HandleFunc("POST /v1/batch", rt.instrument("batch", rt.handleBatch))
	mux.HandleFunc("GET /v1/nodes/{id}", rt.instrument("nodes", rt.handleNode))
	mux.HandleFunc("GET /v1/keywords", rt.instrument("keywords", rt.handleKeywords))
	mux.HandleFunc("GET /v1/stats", rt.instrument("stats", rt.handleStats))
	mux.HandleFunc("POST /v1/admin/patch", rt.instrument("admin", rt.handleAdminPatch))
	if rt.reg != nil {
		mux.HandleFunc("GET /metrics", rt.handleMetrics)
	}
	return mux
}

// statusWriter captures the status a handler wrote for the code label.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument counts and times requests per endpoint, same label scheme as
// korserve's korserve_http_* set so dashboards line up.
//
// korvet:labels — endpoint is a handler-name literal at every call site.
func (rt *router) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	if rt.met == nil {
		return h
	}
	latency := rt.met.latency.With(endpoint)
	return func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		h(sw, r)
		rt.met.requests.With(endpoint, korapi.StatusLabel(sw.status)).Inc()
		latency.Observe(time.Since(start).Seconds())
	}
}

func (rt *router) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := rt.reg.WritePrometheus(w); err != nil {
		log.Printf("korrouter: writing metrics: %v", err)
	}
}

// countScatter records one scatter-leg outcome.
//
// korvet:labels — callers pass a literal from the scatter outcome set.
func (rt *router) countScatter(outcome string) {
	if rt.met != nil {
		rt.met.scatter.With(outcome).Inc()
	}
}

// queryCtx derives the scatter context for one client request.
func (rt *router) queryCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if rt.timeout > 0 {
		return context.WithTimeout(r.Context(), rt.timeout)
	}
	return context.WithCancel(r.Context())
}

func (rt *router) handleRouteGet(w http.ResponseWriter, r *http.Request) {
	req, apiErr := korapi.RequestFromParams(r.URL.Query())
	if apiErr != nil {
		korapi.WriteError(w, apiErr)
		return
	}
	ctx, cancel := rt.queryCtx(r)
	defer cancel()
	rt.serveRoute(ctx, w, req)
}

func (rt *router) handleRoutePost(w http.ResponseWriter, r *http.Request) {
	var req korapi.Request
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		korapi.WriteError(w, &korapi.Error{Code: korapi.CodeBadRequest, Message: "invalid JSON body: " + err.Error()})
		return
	}
	ctx, cancel := rt.queryCtx(r)
	defer cancel()
	rt.serveRoute(ctx, w, req)
}

// serveRoute scatters one query and writes the merged outcome.
func (rt *router) serveRoute(ctx context.Context, w http.ResponseWriter, req korapi.Request) {
	gathered := rt.scatter(ctx, req)
	resp, apiErr, retry := cluster.Merge(req.K, gathered)
	if apiErr != nil {
		rt.writeMergedError(w, apiErr, retry)
		return
	}
	korapi.WriteJSON(w, resp)
}

// writeMergedError emits a merged error with the Retry-After contract:
// overload and unavailability always carry the header (satellite of the
// korapi envelope guarantee — a partially down cluster sheds with 429/503
// plus backoff, never a bare 502).
func (rt *router) writeMergedError(w http.ResponseWriter, apiErr *korapi.Error, retry int) {
	if apiErr.Code == korapi.CodeOverloaded || apiErr.Code == korapi.CodeUnavailable {
		if retry < rt.retryAfter {
			retry = rt.retryAfter
		}
		korapi.WriteErrorRetry(w, apiErr, retry)
		return
	}
	korapi.WriteError(w, apiErr)
}

// scatter fans req out to the shards whose keyword postings can answer it
// and gathers the per-shard outcomes. Each leg picks one healthy,
// unquarantined replica of its shard; a response computed on an unexpected
// snapshot is discarded (counted as a mismatch) and the replica is
// re-probed synchronously to decide quarantine.
func (rt *router) scatter(ctx context.Context, req korapi.Request) []cluster.Gathered {
	shards := rt.shardMap.ScatterSet(req.From, req.To, req.Keywords)
	if rt.met != nil {
		rt.met.fanout.Observe(float64(len(shards)))
	}
	gathered := make([]cluster.Gathered, len(shards))
	var wg sync.WaitGroup
	for i, shard := range shards {
		wg.Add(1)
		go func(i, shard int) {
			defer wg.Done()
			gathered[i] = rt.queryShard(ctx, shard, req)
		}(i, shard)
	}
	wg.Wait()
	return gathered
}

// queryShard runs one scatter leg: POST /v1/route on one replica of shard.
func (rt *router) queryShard(ctx context.Context, shard int, req korapi.Request) cluster.Gathered {
	replica, ok := rt.pool.Pick(shard)
	if !ok {
		rt.countScatter("unavailable")
		return cluster.Gathered{Shard: shard, Unavailable: true}
	}
	body, err := json.Marshal(req)
	if err != nil {
		rt.countScatter("error")
		return cluster.Gathered{Shard: shard, Err: &korapi.Error{Code: korapi.CodeInternal, Message: err.Error()}}
	}
	hr, err := http.NewRequestWithContext(ctx, http.MethodPost, replica.URL+"/v1/route", bytes.NewReader(body))
	if err != nil {
		rt.countScatter("error")
		return cluster.Gathered{Shard: shard, Err: &korapi.Error{Code: korapi.CodeInternal, Message: err.Error()}}
	}
	hr.Header.Set("Content-Type", "application/json")
	resp, err := rt.client.Do(hr)
	if err != nil {
		rt.pool.ObserveFailure(replica, err)
		rt.countScatter("unavailable")
		return cluster.Gathered{Shard: shard, Unavailable: true}
	}
	defer resp.Body.Close()

	if resp.StatusCode == http.StatusOK {
		var out korapi.Response
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			rt.pool.ObserveFailure(replica, fmt.Errorf("decoding %s response: %w", replica.URL, err))
			rt.countScatter("error")
			return cluster.Gathered{Shard: shard, Unavailable: true}
		}
		if !rt.pool.ObserveResponse(replica, out.Snapshot) {
			// The replica answered on a snapshot the router does not accept:
			// the payload may disagree with the rest of the shard set, so it
			// is discarded, and the replica's *live* state decides whether
			// this was a benign in-flight race or a real divergence.
			rt.countScatter("mismatch")
			rt.pool.Confirm(ctx, replica)
			return cluster.Gathered{Shard: shard, Unavailable: true}
		}
		rt.countScatter("ok")
		return cluster.Gathered{Shard: shard, Resp: &out}
	}

	// Wire error: the replica is alive and classified the request.
	rt.pool.ObserveResponse(replica, nil)
	retryAfter, _ := strconv.Atoi(resp.Header.Get("Retry-After"))
	var env korapi.ErrorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil || env.Error.Code == "" {
		rt.countScatter("error")
		return cluster.Gathered{Shard: shard, Unavailable: true, RetryAfter: retryAfter}
	}
	rt.countScatter("error")
	return cluster.Gathered{Shard: shard, Err: &env.Error, RetryAfter: retryAfter}
}

// handleBatch answers POST /v1/batch by scattering each request
// independently, a bounded number at a time. Per-request failures come back
// inline exactly as on a single korserve.
func (rt *router) handleBatch(w http.ResponseWriter, r *http.Request) {
	var breq korapi.BatchRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&breq); err != nil {
		korapi.WriteError(w, &korapi.Error{Code: korapi.CodeBadRequest, Message: "invalid JSON body: " + err.Error()})
		return
	}
	requests := breq.All()
	if len(requests) == 0 {
		korapi.WriteError(w, &korapi.Error{Code: korapi.CodeBadRequest, Message: "batch contains no requests"})
		return
	}
	const maxBatch = 1024
	if len(requests) > maxBatch {
		korapi.WriteError(w, &korapi.Error{
			Code:    korapi.CodeBadRequest,
			Message: fmt.Sprintf("batch of %d exceeds the limit of %d", len(requests), maxBatch),
		})
		return
	}
	par := rt.maxPar
	if breq.Parallelism > 0 && breq.Parallelism < par {
		par = breq.Parallelism
	}
	if par > len(requests) {
		par = len(requests)
	}

	ctx, cancel := rt.queryCtx(r)
	defer cancel()

	results := make([]korapi.BatchResult, len(requests))
	sem := make(chan struct{}, par)
	var wg sync.WaitGroup
	for i, req := range requests {
		wg.Add(1)
		go func(i int, req korapi.Request) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if ctx.Err() != nil {
				results[i] = korapi.BatchResult{Error: &korapi.Error{
					Code: korapi.CodeDeadline, Message: "batch deadline exceeded before this request ran",
				}}
				return
			}
			resp, apiErr, _ := cluster.Merge(req.K, rt.scatter(ctx, req))
			if apiErr != nil {
				results[i] = korapi.BatchResult{Error: apiErr}
				return
			}
			results[i] = korapi.BatchResult{Response: resp}
		}(i, req)
	}
	wg.Wait()

	out := korapi.BatchResponse{Results: results}
	for _, res := range results {
		if res.Error != nil && (res.Error.Code == korapi.CodeDeadline || res.Error.Code == korapi.CodeCanceled) {
			out.Incomplete = true
			break
		}
	}
	korapi.WriteJSON(w, out)
}

// handleNode forwards GET /v1/nodes/{id} to a replica of the shard that
// owns the node — the owner always has the node's keywords in its closure.
func (rt *router) handleNode(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 32)
	if err != nil || id < 0 || int(id) >= rt.shardMap.Nodes {
		korapi.WriteError(w, &korapi.Error{Code: korapi.CodeNotFound, Message: "no such node"})
		return
	}
	shard := rt.shardMap.OwnerOf(id)
	replica, ok := rt.pool.Pick(shard)
	if !ok {
		rt.writeMergedError(w, &korapi.Error{
			Code:    korapi.CodeUnavailable,
			Message: fmt.Sprintf("no replica of shard %d (owner of node %d) is available", shard, id),
		}, rt.retryAfter)
		return
	}
	ctx, cancel := rt.queryCtx(r)
	defer cancel()
	hr, err := http.NewRequestWithContext(ctx, http.MethodGet, fmt.Sprintf("%s/v1/nodes/%d", replica.URL, id), nil)
	if err != nil {
		korapi.WriteError(w, &korapi.Error{Code: korapi.CodeInternal, Message: err.Error()})
		return
	}
	resp, err := rt.client.Do(hr)
	if err != nil {
		rt.pool.ObserveFailure(replica, err)
		rt.writeMergedError(w, &korapi.Error{
			Code:    korapi.CodeUnavailable,
			Message: "the node's shard backend did not answer; retry after backoff",
		}, rt.retryAfter)
		return
	}
	defer resp.Body.Close()
	rt.pool.ObserveResponse(replica, nil)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(resp.StatusCode)
	if _, err := io.Copy(w, resp.Body); err != nil {
		log.Printf("korrouter: relaying node response: %v", err)
	}
}

// handleKeywords scatters the autocomplete query to one replica per shard
// and merges the suggestions. Per-keyword node counts are a shard-local view
// whose halo overlap makes the union unrecoverable from live counts alone,
// so counts come from the shard map's owned-node sums (exact: ownership
// partitions the nodes). Keywords the map does not know — added by live
// patches after the cut — fall back to the maximum live count, a lower
// bound.
func (rt *router) handleKeywords(w http.ResponseWriter, r *http.Request) {
	limit := 10
	if l := r.URL.Query().Get("limit"); l != "" {
		n, err := strconv.Atoi(l)
		if err != nil || n < 1 || n > 200 {
			korapi.WriteError(w, &korapi.Error{Code: korapi.CodeBadRequest, Message: "limit must be an integer in 1..200"})
			return
		}
		limit = n
	}
	prefix := r.URL.Query().Get("prefix")

	ctx, cancel := rt.queryCtx(r)
	defer cancel()

	shards := rt.pool.Shards()
	type shardKeywords struct {
		resp *korapi.KeywordsResponse
		ok   bool
	}
	outcomes := make([]shardKeywords, len(shards))
	var wg sync.WaitGroup
	for i, shard := range shards {
		wg.Add(1)
		go func(i, shard int) {
			defer wg.Done()
			replica, ok := rt.pool.Pick(shard)
			if !ok {
				return
			}
			url := fmt.Sprintf("%s/v1/keywords?prefix=%s&limit=%d", replica.URL, neturl.QueryEscape(prefix), limit)
			hr, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
			if err != nil {
				return
			}
			resp, err := rt.client.Do(hr)
			if err != nil {
				rt.pool.ObserveFailure(replica, err)
				return
			}
			defer resp.Body.Close()
			rt.pool.ObserveResponse(replica, nil)
			if resp.StatusCode != http.StatusOK {
				return
			}
			var kr korapi.KeywordsResponse
			if err := json.NewDecoder(resp.Body).Decode(&kr); err != nil {
				return
			}
			outcomes[i] = shardKeywords{resp: &kr, ok: true}
		}(i, shard)
	}
	wg.Wait()

	merged := make(map[string]int)
	answered := false
	for _, oc := range outcomes {
		if !oc.ok {
			continue
		}
		answered = true
		for _, kw := range oc.resp.Keywords {
			if kw.Nodes > merged[kw.Keyword] {
				merged[kw.Keyword] = kw.Nodes
			}
		}
	}
	for kw := range merged {
		if n, ok := rt.shardMap.OwnedKeywordCount(kw); ok {
			merged[kw] = n
		}
	}
	if !answered {
		rt.writeMergedError(w, &korapi.Error{
			Code:    korapi.CodeUnavailable,
			Message: "no shard backend could answer; retry after backoff",
		}, rt.retryAfter)
		return
	}
	out := korapi.KeywordsResponse{Keywords: make([]korapi.Keyword, 0, len(merged))}
	for kw, nodes := range merged {
		out.Keywords = append(out.Keywords, korapi.Keyword{Keyword: kw, Nodes: nodes})
	}
	// Same order as a single korserve: keyword name ascending.
	sort.Slice(out.Keywords, func(i, j int) bool { return out.Keywords[i].Keyword < out.Keywords[j].Keyword })
	if len(out.Keywords) > limit {
		out.Keywords = out.Keywords[:limit]
	}
	korapi.WriteJSON(w, out)
}

// handleStats serves the full-graph summary from the shard map plus the
// live cluster block from the pool.
func (rt *router) handleStats(w http.ResponseWriter, _ *http.Request) {
	m := rt.shardMap
	out := korapi.Stats{
		Nodes:        m.Nodes,
		Edges:        m.Edges,
		Terms:        m.Terms,
		MinObjective: m.MinObjective,
		MaxObjective: m.MaxObjective,
		MinBudget:    m.MinBudget,
		MaxBudget:    m.MaxBudget,
		Role:         "router",
	}
	if m.Nodes > 0 {
		out.AvgOutDegree = float64(m.Edges) / float64(m.Nodes)
	}
	cs := rt.pool.ClusterStats()
	out.Cluster = &cs
	korapi.WriteJSON(w, out)
}

// handleAdminPatch replicates a delta to every replica of every shard —
// including quarantined ones, which is precisely how a diverged replica
// converges back — then settles each shard's expectation on the post-patch
// consensus fingerprint.
func (rt *router) handleAdminPatch(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 64<<20))
	if err != nil {
		korapi.WriteError(w, &korapi.Error{Code: korapi.CodeBadRequest, Message: "reading body: " + err.Error()})
		return
	}
	var delta korapi.Delta
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&delta); err != nil {
		korapi.WriteError(w, &korapi.Error{Code: korapi.CodeBadRequest, Message: "invalid JSON body: " + err.Error()})
		return
	}
	if delta.Empty() {
		korapi.WriteError(w, &korapi.Error{Code: korapi.CodeBadRequest, Message: "delta contains no changes"})
		return
	}

	ctx, cancel := rt.queryCtx(r)
	defer cancel()

	shards := rt.pool.Shards()
	perShard := make([][]cluster.AdminResult, len(shards))
	var wg sync.WaitGroup
	for i, shard := range shards {
		replicas := rt.pool.Replicas(shard)
		perShard[i] = make([]cluster.AdminResult, len(replicas))
		for j, replica := range replicas {
			wg.Add(1)
			go func(i, j int, replica *cluster.Replica) {
				defer wg.Done()
				perShard[i][j] = rt.patchReplica(ctx, replica, body)
			}(i, j, replica)
		}
	}
	wg.Wait()

	for i, shard := range shards {
		rt.pool.ApplyAdmin(shard, perShard[i])
	}

	// Quarantine bits after every shard settled.
	quarantined := make(map[string]bool)
	for _, ss := range rt.pool.ClusterStats().Shards {
		for _, rep := range ss.Replicas {
			quarantined[rep.URL] = rep.Quarantined
		}
	}

	out := korapi.ClusterAdminResponse{}
	anyOK := false
	var firstErr *korapi.Error
	for i, shard := range shards {
		sa := korapi.ShardAdmin{Shard: shard, ExpectedFingerprint: rt.pool.Expected(shard)}
		for _, res := range perShard[i] {
			ra := korapi.ReplicaAdmin{URL: res.Replica.URL, Quarantined: quarantined[res.Replica.URL]}
			if res.Err != nil {
				ra.Error = res.Err
				if firstErr == nil {
					firstErr = res.Err
				}
			} else {
				ra.Snapshot = res.Snapshot
				anyOK = true
			}
			sa.Replicas = append(sa.Replicas, ra)
		}
		out.Shards = append(out.Shards, sa)
	}
	out.Quarantined = rt.pool.QuarantinedReplicas()

	if !anyOK {
		// Nothing applied anywhere. A uniform wire rejection (the delta
		// itself is bad) propagates as-is; transport-flavored failures shed
		// retryably.
		if firstErr != nil && requestShapedAdmin(firstErr.Code) {
			korapi.WriteError(w, firstErr)
			return
		}
		rt.writeMergedError(w, &korapi.Error{
			Code:    korapi.CodeUnavailable,
			Message: "no replica accepted the patch; retry after backoff",
		}, rt.retryAfter)
		return
	}
	korapi.WriteJSON(w, out)
}

// requestShapedAdmin reports admin error codes that indict the delta, not
// the backend.
func requestShapedAdmin(code korapi.ErrorCode) bool {
	return code == korapi.CodeBadRequest || code == korapi.CodeNotFound
}

// patchReplica ships the raw delta body to one replica's /v1/admin/patch.
func (rt *router) patchReplica(ctx context.Context, replica *cluster.Replica, body []byte) cluster.AdminResult {
	hr, err := http.NewRequestWithContext(ctx, http.MethodPost, replica.URL+"/v1/admin/patch", bytes.NewReader(body))
	if err != nil {
		return cluster.AdminResult{Replica: replica, Err: &korapi.Error{Code: korapi.CodeInternal, Message: err.Error()}}
	}
	hr.Header.Set("Content-Type", "application/json")
	resp, err := rt.client.Do(hr)
	if err != nil {
		rt.pool.ObserveFailure(replica, err)
		return cluster.AdminResult{Replica: replica, Err: &korapi.Error{Code: korapi.CodeUnavailable, Message: err.Error()}}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var env korapi.ErrorEnvelope
		if err := json.NewDecoder(resp.Body).Decode(&env); err != nil || env.Error.Code == "" {
			return cluster.AdminResult{Replica: replica, Err: &korapi.Error{
				Code:    korapi.CodeUnavailable,
				Message: fmt.Sprintf("patch on %s: status %d", replica.URL, resp.StatusCode),
			}}
		}
		return cluster.AdminResult{Replica: replica, Err: &env.Error}
	}
	var ar korapi.AdminResponse
	if err := json.NewDecoder(resp.Body).Decode(&ar); err != nil {
		return cluster.AdminResult{Replica: replica, Err: &korapi.Error{
			Code:    korapi.CodeUnavailable,
			Message: fmt.Sprintf("decoding patch response from %s: %v", replica.URL, err),
		}}
	}
	snap := ar.Snapshot
	return cluster.AdminResult{Replica: replica, Snapshot: &snap}
}
