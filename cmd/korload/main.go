// Command korload drives load against a running korserve and gates on SLOs
// — the soak harness CI runs on every PR, and the tool an operator sizes a
// deployment with.
//
// It replays a recorded request file or synthesizes a query mix against the
// target's own graph (node count, budget extrema and vocabulary are probed
// from /v1/stats and /v1/keywords), fires it either closed-loop (every
// worker immediately issues the next request) or open-loop at a fixed
// arrival rate (-qps), and prints a JSON report: throughput, latency
// percentiles, and every response bucketed into ok / no_route / rejected /
// client_error / error.
//
// Usage:
//
//	korload -url http://localhost:8080 -duration 30s -concurrency 16
//	korload -url ... -qps 200 -mix "bucketbound=0.7,greedy=0.2,topk=0.1"
//	korload -url ... -replay requests.json -slo-p99 250ms -slo-max-error-rate 0
//	korload -url ... -concurrency 64 -require-429   # oversaturation check
//	korload -targets http://router:8080,http://replica:8081 -slo-p99 500ms
//
// With -targets, requests round-robin across the listed base URLs and the
// report gains a per-target breakdown; the latency and error SLOs then apply
// to every target individually, so one healthy target cannot mask a sick one.
//
// Exit status: 0 when every configured SLO holds, 1 on violations (the
// violations are listed in the report), 2 on setup errors. A 404 no_route
// is a correct answer and a 429 is deliberate shedding; only the error
// class (5xx, deadlines, transport failures) counts against
// -slo-max-error-rate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"
)

func main() {
	var cfg config
	var report string
	flag.StringVar(&cfg.URL, "url", "", "korserve base URL, e.g. http://localhost:8080 (required unless -targets is set)")
	flag.StringVar(&cfg.Targets, "targets", "", "comma-separated base URLs to round-robin across; overrides -url")
	flag.DurationVar(&cfg.Duration, "duration", 10*time.Second, "how long to drive load")
	flag.Float64Var(&cfg.QPS, "qps", 0, "fixed arrival rate; 0 = closed loop")
	flag.IntVar(&cfg.Concurrency, "concurrency", 8, "concurrent workers")
	flag.DurationVar(&cfg.Timeout, "timeout", 30*time.Second, "per-request client timeout")
	flag.Int64Var(&cfg.Seed, "seed", 2012, "workload RNG seed")
	flag.StringVar(&cfg.Mix, "mix", "bucketbound=0.6,greedy=0.2,osscaling=0.1,topk=0.1", "algorithm blend as name=weight pairs")
	flag.IntVar(&cfg.KeywordsMin, "keywords-min", 1, "smallest keyword-set size")
	flag.IntVar(&cfg.KeywordsMax, "keywords-max", 3, "largest keyword-set size")
	flag.Float64Var(&cfg.BudgetMin, "budget-min", 0, "budget draw lower bound (0 = auto from /v1/stats)")
	flag.Float64Var(&cfg.BudgetMax, "budget-max", 0, "budget draw upper bound (0 = auto from /v1/stats)")
	flag.IntVar(&cfg.K, "k", 3, "K for topk requests")
	flag.IntVar(&cfg.Locality, "locality", 0, "draw To within ±N node IDs of From (0 = uniform); keeps queries feasible on large graphs")
	flag.Float64Var(&cfg.DupFraction, "dup-fraction", 0, "fraction of requests re-issued verbatim from a recent-request pool (duplicate-heavy traffic; exercises result caching and request coalescing)")
	flag.BoolVar(&cfg.WithMetrics, "metrics", false, "request search metrics with every query")
	flag.StringVar(&cfg.ReplayPath, "replay", "", "JSON file (array or lines) of korapi.Requests to replay instead of synthesizing")
	flag.DurationVar(&cfg.ChurnEvery, "patch-churn", 0, "POST an admin keyword patch at this period (0 = off)")
	flag.DurationVar(&cfg.SLOP50, "slo-p50", 0, "fail when p50 latency exceeds this (0 = off)")
	flag.DurationVar(&cfg.SLOP99, "slo-p99", 0, "fail when p99 latency exceeds this (0 = off)")
	flag.Float64Var(&cfg.SLOMaxErrorRate, "slo-max-error-rate", -1, "fail when the error rate exceeds this fraction (negative = off, 0 = no errors allowed)")
	flag.Float64Var(&cfg.SLOMinQPS, "slo-min-qps", 0, "fail when throughput falls below this (0 = off)")
	flag.BoolVar(&cfg.Require429, "require-429", false, "fail unless at least one request was shed with a 429 (for oversaturation checks)")
	flag.StringVar(&report, "report", "", "also write the JSON report to this file")
	flag.Parse()

	if cfg.URL == "" && cfg.Targets == "" {
		fmt.Fprintln(os.Stderr, "korload: -url or -targets is required")
		flag.Usage()
		os.Exit(2)
	}

	rep, err := run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "korload:", err)
		os.Exit(2)
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "korload:", err)
		os.Exit(2)
	}
	buf = append(buf, '\n')
	os.Stdout.Write(buf)
	if report != "" {
		if err := os.WriteFile(report, buf, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "korload: writing report:", err)
			os.Exit(2)
		}
	}
	if !rep.Pass {
		fmt.Fprintf(os.Stderr, "korload: %d SLO violation(s)\n", len(rep.SLOViolations))
		os.Exit(1)
	}
}
