package main

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"kor/korapi"
)

// stubServe builds a canned korserve lookalike: enough of the /v1 surface
// for the prober and the drivers, with the route handler supplied by the
// test.
func stubServe(t *testing.T, route http.HandlerFunc) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(korapi.Stats{Nodes: 20, Edges: 60, MaxBudget: 2})
	})
	mux.HandleFunc("GET /v1/keywords", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(korapi.KeywordsResponse{Keywords: []korapi.Keyword{
			{Keyword: "cafe", Nodes: 5}, {Keyword: "jazz", Nodes: 3}, {Keyword: "park", Nodes: 7},
		}})
	})
	mux.HandleFunc("POST /v1/route", route)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

// okRoute answers every request with a minimal successful response.
func okRoute(w http.ResponseWriter, r *http.Request) {
	var req korapi.Request
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		w.WriteHeader(http.StatusBadRequest)
		json.NewEncoder(w).Encode(korapi.ErrorEnvelope{Error: korapi.Error{Code: korapi.CodeBadRequest, Message: err.Error()}})
		return
	}
	json.NewEncoder(w).Encode(korapi.Response{
		Algorithm: req.Algorithm,
		Routes:    []korapi.Route{{Nodes: []int64{req.From, req.To}, Objective: 1, Budget: 1, Feasible: true}},
	})
}

func TestParseMix(t *testing.T) {
	mix, err := parseMix("bucketbound=0.7, greedy=0.2,topk=0.1")
	if err != nil {
		t.Fatal(err)
	}
	if len(mix) != 3 || mix[0].algo != "bucketbound" || mix[0].weight != 0.7 {
		t.Errorf("mix = %+v", mix)
	}
	if mix, err := parseMix("greedy"); err != nil || len(mix) != 1 || mix[0].weight != 1 {
		t.Errorf("bare name mix = %+v, err %v", mix, err)
	}
	for _, bad := range []string{"", "a=-1", "a=x", "=2"} {
		if _, err := parseMix(bad); err == nil {
			t.Errorf("parseMix(%q) accepted", bad)
		}
	}
}

func TestPercentile(t *testing.T) {
	s := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if p := percentile(s, 0.5); p != 5 {
		t.Errorf("p50 = %v, want 5", p)
	}
	if p := percentile(s, 0.99); p != 10 {
		t.Errorf("p99 = %v, want 10", p)
	}
	if p := percentile(s, 1); p != 10 {
		t.Errorf("p100 = %v, want 10", p)
	}
}

// TestRunSynthesized drives the closed-loop driver against a stub that
// answers every outcome class and checks the report buckets them.
func TestRunSynthesized(t *testing.T) {
	var n atomic.Int64
	ts := stubServe(t, func(w http.ResponseWriter, r *http.Request) {
		var req korapi.Request
		json.NewDecoder(r.Body).Decode(&req)
		switch n.Add(1) % 5 {
		case 0: // no feasible route
			w.WriteHeader(http.StatusNotFound)
			json.NewEncoder(w).Encode(korapi.ErrorEnvelope{Error: korapi.Error{Code: korapi.CodeNoRoute, Message: "no feasible route"}})
		case 1: // shed
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(korapi.ErrorEnvelope{Error: korapi.Error{Code: korapi.CodeOverloaded, Message: "saturated"}})
		default:
			json.NewEncoder(w).Encode(korapi.Response{Algorithm: req.Algorithm, Routes: []korapi.Route{{Nodes: []int64{req.From, req.To}}}})
		}
	})

	rep, err := run(config{
		URL:             ts.URL,
		Duration:        300 * time.Millisecond,
		Concurrency:     4,
		Mix:             "bucketbound=0.5,greedy=0.5",
		KeywordsMin:     1,
		KeywordsMax:     2,
		SLOMaxErrorRate: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 || rep.ThroughputQPS == 0 {
		t.Fatalf("report saw no traffic: %+v", rep)
	}
	if rep.Outcomes.OK == 0 || rep.Outcomes.NoRoute == 0 || rep.Outcomes.Rejected == 0 {
		t.Errorf("outcome buckets not all hit: %+v", rep.Outcomes)
	}
	if rep.Outcomes.Error != 0 || rep.Outcomes.ClientError != 0 {
		t.Errorf("unexpected errors: %+v", rep.Outcomes)
	}
	if got := rep.Outcomes.OK + rep.Outcomes.NoRoute + rep.Outcomes.Rejected; got != rep.Requests {
		t.Errorf("requests %d != outcome sum %d", rep.Requests, got)
	}
	if rep.Latency.P50MS <= 0 || rep.Latency.P99MS < rep.Latency.P50MS {
		t.Errorf("implausible latency summary: %+v", rep.Latency)
	}
	if !rep.Pass {
		t.Errorf("violations with every gate off: %v", rep.SLOViolations)
	}
}

// TestRunOpenLoop: a fixed arrival rate issues roughly rate×duration
// requests, far fewer than four unthrottled workers would.
func TestRunOpenLoop(t *testing.T) {
	ts := stubServe(t, okRoute)
	rep, err := run(config{
		URL:             ts.URL,
		Duration:        500 * time.Millisecond,
		QPS:             40,
		Concurrency:     4,
		Mix:             "bucketbound",
		SLOMaxErrorRate: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// ~20 expected; allow generous scheduling slack in both directions.
	if rep.Requests < 5 || rep.Requests > 40 {
		t.Errorf("open loop at 40qps for 500ms made %d requests, want ≈20", rep.Requests)
	}
}

// TestRunSLOGates: violations must trip the gates and flip Pass.
func TestRunSLOGates(t *testing.T) {
	ts := stubServe(t, func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
		json.NewEncoder(w).Encode(korapi.ErrorEnvelope{Error: korapi.Error{Code: korapi.CodeInternal, Message: "boom"}})
	})
	rep, err := run(config{
		URL:             ts.URL,
		Duration:        200 * time.Millisecond,
		Concurrency:     2,
		Mix:             "bucketbound",
		SLOMaxErrorRate: 0,
		Require429:      true,
		SLOP99:          time.Nanosecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pass {
		t.Fatal("all-500 run passed its gates")
	}
	if rep.ErrorRate != 1 {
		t.Errorf("error rate = %v, want 1", rep.ErrorRate)
	}
	// Three distinct gates tripped: error rate, missing 429s, p99.
	if len(rep.SLOViolations) < 3 {
		t.Errorf("violations = %v, want error-rate, require-429 and p99 gates", rep.SLOViolations)
	}
}

// TestRunReplay: the driver replays a recorded request file round-robin
// instead of synthesizing.
func TestRunReplay(t *testing.T) {
	var sawTopk atomic.Int64
	ts := stubServe(t, func(w http.ResponseWriter, r *http.Request) {
		var req korapi.Request
		json.NewDecoder(r.Body).Decode(&req)
		if req.Algorithm == "topk" {
			sawTopk.Add(1)
		}
		json.NewEncoder(w).Encode(korapi.Response{Algorithm: req.Algorithm, Routes: []korapi.Route{{}}})
	})

	path := filepath.Join(t.TempDir(), "replay.json")
	reqs := []korapi.Request{
		{From: 1, To: 2, Keywords: []string{"cafe"}, Budget: 5},
		{From: 2, To: 3, Keywords: []string{"jazz"}, Budget: 4, Algorithm: "topk", K: 3},
	}
	buf, _ := json.Marshal(reqs)
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}

	rep, err := run(config{
		URL:             ts.URL,
		Duration:        200 * time.Millisecond,
		Concurrency:     2,
		ReplayPath:      path,
		SLOMaxErrorRate: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 || rep.Outcomes.OK != rep.Requests {
		t.Fatalf("replay report = %+v", rep)
	}
	if sawTopk.Load() == 0 {
		t.Error("replayed topk request never reached the server")
	}
}

// TestRunPatchChurn: the churn goroutine posts admin patches while load
// flows, and the report counts them.
func TestRunPatchChurn(t *testing.T) {
	var patched atomic.Int64
	ts := stubServe(t, okRoute)
	// stubServe's mux is already built; spin a second stub with the admin
	// route included.
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(korapi.Stats{Nodes: 20, MaxBudget: 2})
	})
	mux.HandleFunc("GET /v1/keywords", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(korapi.KeywordsResponse{Keywords: []korapi.Keyword{{Keyword: "cafe", Nodes: 1}}})
	})
	mux.HandleFunc("POST /v1/route", okRoute)
	mux.HandleFunc("POST /v1/admin/patch", func(w http.ResponseWriter, r *http.Request) {
		var d korapi.Delta
		if err := json.NewDecoder(r.Body).Decode(&d); err != nil || d.Empty() {
			w.WriteHeader(http.StatusBadRequest)
			return
		}
		patched.Add(1)
		json.NewEncoder(w).Encode(korapi.AdminResponse{})
	})
	ts.Close()
	ts = httptest.NewServer(mux)
	t.Cleanup(ts.Close)

	rep, err := run(config{
		URL:             ts.URL,
		Duration:        300 * time.Millisecond,
		Concurrency:     2,
		Mix:             "bucketbound",
		ChurnEvery:      50 * time.Millisecond,
		SLOMaxErrorRate: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.AdminPatches == 0 || int64(rep.AdminPatches) != patched.Load() {
		t.Errorf("admin patches: report %d, server saw %d", rep.AdminPatches, patched.Load())
	}
	if rep.AdminErrors != 0 {
		t.Errorf("admin errors = %d, want 0", rep.AdminErrors)
	}
}

func TestParseTargets(t *testing.T) {
	got, err := parseTargets("http://a:1, http://b:2/ ,http://c:3")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"http://a:1", "http://b:2", "http://c:3"}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Errorf("parseTargets = %v, want %v", got, want)
	}
	for _, bad := range []string{"", " , ", "no-scheme.example", "http://a,not a url"} {
		if _, err := parseTargets(bad); err == nil {
			t.Errorf("parseTargets(%q) accepted", bad)
		}
	}
}

// TestRunMultiTarget: -targets round-robins the identical stream across both
// servers and the report breaks the run down per target.
func TestRunMultiTarget(t *testing.T) {
	var hits [2]atomic.Int64
	ts0 := stubServe(t, func(w http.ResponseWriter, r *http.Request) {
		hits[0].Add(1)
		okRoute(w, r)
	})
	ts1 := stubServe(t, func(w http.ResponseWriter, r *http.Request) {
		hits[1].Add(1)
		okRoute(w, r)
	})

	rep, err := run(config{
		Targets:         ts0.URL + "," + ts1.URL,
		Duration:        300 * time.Millisecond,
		Concurrency:     4,
		Mix:             "bucketbound",
		SLOMaxErrorRate: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Targets) != 2 {
		t.Fatalf("per-target breakdown has %d entries, want 2: %+v", len(rep.Targets), rep.Targets)
	}
	sum := 0
	for i, tr := range rep.Targets {
		if tr.Requests == 0 {
			t.Errorf("target %d (%s) saw no requests", i, tr.URL)
		}
		// Requests the deadline cut mid-flight reach the server but are
		// dropped from the report; at most one per worker can be in flight.
		if got := hits[i].Load(); int64(tr.Requests) > got || got-int64(tr.Requests) > 4 {
			t.Errorf("target %d: report %d requests, server saw %d", i, tr.Requests, got)
		}
		if tr.Requests > 0 && tr.Latency.P50MS <= 0 {
			t.Errorf("target %d latency summary empty: %+v", i, tr.Latency)
		}
		sum += tr.Requests
	}
	if sum != rep.Requests {
		t.Errorf("per-target requests sum to %d, aggregate says %d", sum, rep.Requests)
	}
	// Round-robin keeps the split near even.
	if a, b := rep.Targets[0].Requests, rep.Targets[1].Requests; a < b-1 || a > b+1 {
		t.Errorf("round robin split %d/%d, want within 1", a, b)
	}
	if !rep.Pass {
		t.Errorf("violations with every gate off: %v", rep.SLOViolations)
	}
}

// TestRunMultiTargetSickReplicaFails: the per-target error gate trips even
// when the aggregate rate stays inside the SLO — the healthy target must not
// mask the sick one.
func TestRunMultiTargetSickReplicaFails(t *testing.T) {
	healthy := stubServe(t, okRoute)
	sick := stubServe(t, func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
		json.NewEncoder(w).Encode(korapi.ErrorEnvelope{Error: korapi.Error{Code: korapi.CodeInternal, Message: "boom"}})
	})

	rep, err := run(config{
		Targets:         healthy.URL + "," + sick.URL,
		Duration:        300 * time.Millisecond,
		Concurrency:     4,
		Mix:             "bucketbound",
		SLOMaxErrorRate: 0.75, // aggregate ≈0.5 clears this; the sick target's 1.0 must not
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ErrorRate > 0.75 {
		t.Fatalf("aggregate error rate %v breached the gate on its own — test premise broken", rep.ErrorRate)
	}
	if rep.Pass {
		t.Fatalf("sick target hidden by the aggregate: %+v", rep)
	}
	found := false
	for _, v := range rep.SLOViolations {
		if strings.Contains(v, sick.URL) {
			found = true
		}
	}
	if !found {
		t.Errorf("violations %v name no target, want one pinned on %s", rep.SLOViolations, sick.URL)
	}
}

// TestEvalSLOZeroRequestTarget: a target the run never reached is itself a
// violation.
func TestEvalSLOZeroRequestTarget(t *testing.T) {
	r := &Report{
		Requests:      10,
		SLOViolations: []string{},
		Targets: []TargetReport{
			{URL: "http://a", Requests: 10},
			{URL: "http://b", Requests: 0},
		},
	}
	r.evalSLO(config{SLOMaxErrorRate: -1})
	if r.Pass {
		t.Fatal("zero-request target passed")
	}
	found := false
	for _, v := range r.SLOViolations {
		if strings.Contains(v, "http://b") && strings.Contains(v, "no requests") {
			found = true
		}
	}
	if !found {
		t.Errorf("violations %v, want one naming the unreached target", r.SLOViolations)
	}
}

// TestRunSetupErrors: unusable targets fail fast instead of reporting.
func TestRunSetupErrors(t *testing.T) {
	if _, err := run(config{URL: "not a url", Duration: time.Second}); err == nil {
		t.Error("bad URL accepted")
	}
	// A reachable server with an empty vocabulary cannot be synthesized
	// against.
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(korapi.Stats{Nodes: 5})
	})
	mux.HandleFunc("GET /v1/keywords", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(korapi.KeywordsResponse{})
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	if _, err := run(config{URL: ts.URL, Duration: time.Second, Mix: "bucketbound"}); err == nil {
		t.Error("keyword-less target accepted")
	}
}

// TestGenerateDupFraction: with -dup-fraction the generator re-issues
// verbatim recent requests (the duplicate-heavy shape that exercises result
// caching and request coalescing on the server) and never records into the
// pool when the knob is off.
func TestGenerateDupFraction(t *testing.T) {
	mix, err := parseMix("bucketbound=1")
	if err != nil {
		t.Fatal(err)
	}
	w := &workload{
		mix: mix, nodes: 50, vocab: []string{"a", "b", "c", "d"},
		kwMin: 1, kwMax: 2, budgetMin: 1, budgetMax: 5,
		dupFraction: 1,
	}
	rng := rand.New(rand.NewSource(1))
	first := w.generate(rng) // empty pool: synthesized, then recorded
	for i := 0; i < 10; i++ {
		if got := w.generate(rng); !reflect.DeepEqual(got, first) {
			t.Fatalf("dup-fraction 1 synthesized a fresh request: %+v vs %+v", got, first)
		}
	}

	w.dupFraction = 0
	w.recent = nil
	for i := 0; i < 10; i++ {
		w.generate(rng)
	}
	if len(w.recent) != 0 {
		t.Fatalf("dup-fraction 0 recorded %d requests into the pool", len(w.recent))
	}
}

func TestPickToLocality(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	w := &workload{nodes: 10000, locality: 50}
	for i := 0; i < 2000; i++ {
		from := rng.Intn(w.nodes)
		to := w.pickTo(rng, from)
		if to < 0 || to >= w.nodes {
			t.Fatalf("to %d out of range", to)
		}
		if d := to - from; d > 50 || d < -50 {
			t.Fatalf("to %d is %d away from %d, want within ±50", to, d, from)
		}
	}
	// Edges of the ID space stay in range.
	for _, from := range []int{0, 1, w.nodes - 1} {
		for i := 0; i < 100; i++ {
			if to := w.pickTo(rng, from); to < 0 || to >= w.nodes {
				t.Fatalf("boundary from %d drew to %d", from, to)
			}
		}
	}
	// Locality 0 and locality ≥ nodes are uniform: both must reach far nodes.
	w.locality = 0
	far := false
	for i := 0; i < 200 && !far; i++ {
		far = w.pickTo(rng, 0) > w.nodes/2
	}
	if !far {
		t.Fatal("locality 0 never drew a far node")
	}
}
