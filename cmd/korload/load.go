package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"kor/korapi"
)

// config is everything one load run needs. Flags in main.go map onto it
// one-to-one; tests construct it directly.
type config struct {
	URL         string        // korserve base URL
	Targets     string        // comma-separated base URLs for multi-target runs; overrides URL
	Duration    time.Duration // how long to drive load
	QPS         float64       // fixed arrival rate; 0 = closed loop
	Concurrency int           // worker count
	Timeout     time.Duration // per-request client timeout
	Seed        int64         // workload RNG seed

	// Synthesized workload shape.
	Mix         string        // algorithm blend, e.g. "bucketbound=0.7,greedy=0.3"
	KeywordsMin int           // smallest keyword-set size
	KeywordsMax int           // largest keyword-set size
	BudgetMin   float64       // budget draw lower bound; 0 = auto from /v1/stats
	BudgetMax   float64       // budget draw upper bound; 0 = auto from /v1/stats
	K           int           // K for topk requests
	Locality    int           // draw To within ±Locality node IDs of From; 0 = uniform
	DupFraction float64       // fraction of requests re-issued verbatim from the recent pool
	WithMetrics bool          // ask the server to attach search metrics
	ReplayPath  string        // JSON file of korapi.Requests to replay instead of synthesizing
	ChurnEvery  time.Duration // POST an admin keyword patch this often; 0 = off

	// SLO gates; the zero value of each disables it.
	SLOP50          time.Duration
	SLOP99          time.Duration
	SLOMaxErrorRate float64 // -1 disables; 0 means "no errors allowed"
	SLOMinQPS       float64
	Require429      bool // fail unless at least one request was shed (oversaturation runs)
}

// Outcomes buckets every response by its operational class. The classes are
// what an operator alarms on, not raw status codes: a no_route 404 is a
// correct answer to an infeasible query, a 429 is deliberate load shedding,
// and only the error class means something is wrong.
type Outcomes struct {
	// OK counts 2xx responses.
	OK int `json:"ok"`
	// NoRoute counts 404s — the server proved no feasible route exists.
	NoRoute int `json:"no_route"`
	// Rejected counts 429s from admission control.
	Rejected int `json:"rejected"`
	// ClientError counts 400/422 — malformed synthesis, a driver bug.
	ClientError int `json:"client_error"`
	// Error counts everything else: 5xx, 504 deadlines, transport failures.
	Error int `json:"error"`
}

func (o *Outcomes) total() int {
	return o.OK + o.NoRoute + o.Rejected + o.ClientError + o.Error
}

// Latency summarizes the latency distribution in milliseconds. Percentiles
// are computed over every request that got an HTTP response (including
// rejections — shedding fast is part of the contract).
type Latency struct {
	MeanMS float64 `json:"mean"`
	P50MS  float64 `json:"p50"`
	P95MS  float64 `json:"p95"`
	P99MS  float64 `json:"p99"`
	MaxMS  float64 `json:"max"`
}

// Report is korload's JSON output — the artifact CI archives and gates on.
type Report struct {
	Target          string   `json:"target"`
	DurationSeconds float64  `json:"duration_seconds"`
	Requests        int      `json:"requests"`
	ThroughputQPS   float64  `json:"throughput_qps"`
	Latency         Latency  `json:"latency_ms"`
	Outcomes        Outcomes `json:"outcomes"`
	ErrorRate       float64  `json:"error_rate"`
	RejectedRate    float64  `json:"rejected_rate"`
	AdminPatches    int      `json:"admin_patches,omitempty"`
	AdminErrors     int      `json:"admin_errors,omitempty"`
	// Targets is the per-target breakdown of a -targets run, request order
	// round-robin; absent on single-target runs.
	Targets       []TargetReport `json:"targets,omitempty"`
	SLOViolations []string       `json:"slo_violations"`
	Pass          bool           `json:"pass"`
}

// TargetReport is one target's slice of a multi-target run. The latency
// and error gates apply to every target individually — a cluster run
// passing only because the fast router target drowns out a sick shard
// replica defeats the point of driving them together.
type TargetReport struct {
	URL           string   `json:"url"`
	Requests      int      `json:"requests"`
	ThroughputQPS float64  `json:"throughput_qps"`
	Latency       Latency  `json:"latency_ms"`
	Outcomes      Outcomes `json:"outcomes"`
	ErrorRate     float64  `json:"error_rate"`
	RejectedRate  float64  `json:"rejected_rate"`
}

// parseTargets splits and normalizes the -targets list.
func parseTargets(spec string) ([]string, error) {
	var targets []string
	for _, t := range strings.Split(spec, ",") {
		t = strings.TrimRight(strings.TrimSpace(t), "/")
		if t == "" {
			continue
		}
		u, err := url.Parse(t)
		if err != nil || u.Scheme == "" {
			return nil, fmt.Errorf("bad target URL %q", t)
		}
		targets = append(targets, t)
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("empty -targets list %q", spec)
	}
	return targets, nil
}

// mixEntry is one algorithm with its sampling weight.
type mixEntry struct {
	algo   string
	weight float64
}

// parseMix parses "bucketbound=0.7,greedy=0.2,topk=0.1"; a bare name gets
// weight 1. Weights need not sum to 1 — sampling normalizes.
func parseMix(s string) ([]mixEntry, error) {
	var mix []mixEntry
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, wstr, found := strings.Cut(part, "=")
		w := 1.0
		if found {
			var err error
			w, err = strconv.ParseFloat(wstr, 64)
			if err != nil || w < 0 {
				return nil, fmt.Errorf("bad mix weight %q", part)
			}
		}
		if name == "" {
			return nil, fmt.Errorf("bad mix entry %q", part)
		}
		mix = append(mix, mixEntry{algo: name, weight: w})
	}
	if len(mix) == 0 {
		return nil, fmt.Errorf("empty algorithm mix %q", s)
	}
	return mix, nil
}

// sample draws one algorithm proportionally to the weights.
func sampleMix(mix []mixEntry, rng *rand.Rand) string {
	total := 0.0
	for _, m := range mix {
		total += m.weight
	}
	if total <= 0 {
		return mix[0].algo
	}
	x := rng.Float64() * total
	for _, m := range mix {
		if x < m.weight {
			return m.algo
		}
		x -= m.weight
	}
	return mix[len(mix)-1].algo
}

// workload produces the request stream: either synthesized against the
// target graph's shape, or replayed from a file.
type workload struct {
	replay []korapi.Request
	next   atomic.Int64 // replay cursor

	mix          []mixEntry
	nodes        int
	vocab        []string
	kwMin, kwMax int
	budgetMin    float64
	budgetMax    float64
	k            int
	locality     int
	metrics      bool

	// Duplicate-heavy traffic: with probability dupFraction a worker
	// re-issues a verbatim recent request instead of synthesizing a fresh
	// one — the shape that exercises the server's result cache, request
	// coalescing and shared sweeps. The pool is a small ring shared across
	// workers (each worker owns its rng, but duplicates must cross workers
	// to collide in-flight).
	dupFraction float64
	dupMu       sync.Mutex
	recent      []korapi.Request
	recentAt    int
}

// dupPoolSize bounds the recent-request ring duplicates are drawn from. Small
// on purpose: a tight pool keeps re-issue probability per distinct request
// high enough to collide with itself in flight.
const dupPoolSize = 32

// newWorkload probes the server for the graph's shape (node count, budget
// extrema, vocabulary) and prepares the generator, or loads the replay file.
func newWorkload(cfg config, client *http.Client) (*workload, error) {
	if cfg.ReplayPath != "" {
		reqs, err := loadReplay(cfg.ReplayPath)
		if err != nil {
			return nil, err
		}
		return &workload{replay: reqs}, nil
	}

	var st korapi.Stats
	if err := getJSON(client, cfg.URL+"/v1/stats", &st); err != nil {
		return nil, fmt.Errorf("probing /v1/stats: %w", err)
	}
	if st.Nodes == 0 {
		return nil, fmt.Errorf("target graph has no nodes")
	}
	var kws korapi.KeywordsResponse
	if err := getJSON(client, cfg.URL+"/v1/keywords?limit=200&prefix=", &kws); err != nil {
		return nil, fmt.Errorf("probing /v1/keywords: %w", err)
	}
	if len(kws.Keywords) == 0 {
		return nil, fmt.Errorf("target graph has no keywords to query")
	}
	vocab := make([]string, len(kws.Keywords))
	for i, k := range kws.Keywords {
		vocab[i] = k.Keyword
	}

	mix, err := parseMix(cfg.Mix)
	if err != nil {
		return nil, err
	}
	w := &workload{
		mix:         mix,
		nodes:       st.Nodes,
		vocab:       vocab,
		kwMin:       cfg.KeywordsMin,
		kwMax:       cfg.KeywordsMax,
		budgetMin:   cfg.BudgetMin,
		budgetMax:   cfg.BudgetMax,
		k:           cfg.K,
		locality:    cfg.Locality,
		dupFraction: cfg.DupFraction,
		metrics:     cfg.WithMetrics,
	}
	if w.kwMin < 1 {
		w.kwMin = 1
	}
	if w.kwMax < w.kwMin {
		w.kwMax = w.kwMin
	}
	if n := len(w.vocab); w.kwMax > n {
		w.kwMax = n
		if w.kwMin > n {
			w.kwMin = n
		}
	}
	// Auto budget range: between the longest single edge and a handful of
	// them, so the stream mixes feasible routes with proved-infeasible ones
	// — both are realistic traffic. Each bound is auto-filled independently
	// when the operator left it unset.
	base := st.MaxBudget
	if base <= 0 {
		base = 10
	}
	if w.budgetMax <= 0 {
		w.budgetMax = 8 * base
	}
	if w.budgetMin <= 0 {
		w.budgetMin = base
	}
	if w.budgetMin > w.budgetMax {
		w.budgetMin = w.budgetMax
	}
	return w, nil
}

// loadReplay reads korapi.Requests from a JSON array or JSON-lines file.
func loadReplay(path string) ([]korapi.Request, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	head, err := br.Peek(1)
	if err != nil {
		return nil, fmt.Errorf("replay file %s is empty", path)
	}
	var reqs []korapi.Request
	if head[0] == '[' {
		if err := json.NewDecoder(br).Decode(&reqs); err != nil {
			return nil, fmt.Errorf("decoding replay array: %w", err)
		}
	} else {
		dec := json.NewDecoder(br)
		for {
			var r korapi.Request
			if err := dec.Decode(&r); errors.Is(err, io.EOF) {
				break
			} else if err != nil {
				return nil, fmt.Errorf("decoding replay line %d: %w", len(reqs)+1, err)
			}
			reqs = append(reqs, r)
		}
	}
	if len(reqs) == 0 {
		return nil, fmt.Errorf("replay file %s holds no requests", path)
	}
	return reqs, nil
}

// generate returns the next request: the replay cursor's entry, or a fresh
// synthesis from rng.
func (w *workload) generate(rng *rand.Rand) korapi.Request {
	if len(w.replay) > 0 {
		i := int(w.next.Add(1)-1) % len(w.replay)
		return w.replay[i]
	}
	if w.dupFraction > 0 && rng.Float64() < w.dupFraction {
		w.dupMu.Lock()
		if len(w.recent) > 0 {
			req := w.recent[rng.Intn(len(w.recent))]
			w.dupMu.Unlock()
			return req
		}
		w.dupMu.Unlock()
	}
	nk := w.kwMin
	if w.kwMax > w.kwMin {
		nk += rng.Intn(w.kwMax - w.kwMin + 1)
	}
	// Sample keywords without replacement via a partial shuffle over index
	// draws; the vocabulary is small (≤200), duplicates just retry.
	seen := make(map[int]bool, nk)
	kws := make([]string, 0, nk)
	for len(kws) < nk {
		i := rng.Intn(len(w.vocab))
		if !seen[i] {
			seen[i] = true
			kws = append(kws, w.vocab[i])
		}
	}
	from := rng.Intn(w.nodes)
	req := korapi.Request{
		From:      int64(from),
		To:        int64(w.pickTo(rng, from)),
		Keywords:  kws,
		Budget:    w.budgetMin + rng.Float64()*(w.budgetMax-w.budgetMin),
		Algorithm: sampleMix(w.mix, rng),
		Metrics:   w.metrics,
	}
	if req.Algorithm == "topk" {
		req.K = w.k
		if req.K < 2 {
			req.K = 3
		}
	}
	if w.dupFraction > 0 {
		w.dupMu.Lock()
		if len(w.recent) < dupPoolSize {
			w.recent = append(w.recent, req)
		} else {
			w.recent[w.recentAt] = req
			w.recentAt = (w.recentAt + 1) % dupPoolSize
		}
		w.dupMu.Unlock()
	}
	return req
}

// pickTo draws the destination node. Uniform by default; with -locality N
// it lands within ±N node IDs of from, clamped to the graph. On
// million-node graphs uniform endpoint pairs are almost always farther
// apart than any sane budget, so every query is proved infeasible before
// the interesting search paths run; locality keeps a realistic share of
// the stream feasible. (Generator node IDs are spatially coherent: grid
// IDs are row-major, road IDs cluster by construction order.)
func (w *workload) pickTo(rng *rand.Rand, from int) int {
	if w.locality <= 0 || w.locality >= w.nodes {
		return rng.Intn(w.nodes)
	}
	lo := from - w.locality
	if lo < 0 {
		lo = 0
	}
	hi := from + w.locality
	if hi > w.nodes-1 {
		hi = w.nodes - 1
	}
	return lo + rng.Intn(hi-lo+1)
}

// classify buckets one response. err covers transport-level failures.
func classify(status int, err error) func(*Outcomes) {
	switch {
	case err != nil:
		return func(o *Outcomes) { o.Error++ }
	case status >= 200 && status < 300:
		return func(o *Outcomes) { o.OK++ }
	case status == http.StatusNotFound:
		return func(o *Outcomes) { o.NoRoute++ }
	case status == http.StatusTooManyRequests:
		return func(o *Outcomes) { o.Rejected++ }
	case status == http.StatusBadRequest || status == http.StatusUnprocessableEntity:
		return func(o *Outcomes) { o.ClientError++ }
	default:
		return func(o *Outcomes) { o.Error++ }
	}
}

// run drives the load and builds the report. It returns an error only for
// setup failures; SLO violations land in the report, not the error.
func run(cfg config) (*Report, error) {
	if cfg.Concurrency < 1 {
		cfg.Concurrency = 1
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 10 * time.Second
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	spec := cfg.Targets
	if spec == "" {
		spec = cfg.URL
	}
	targets, err := parseTargets(spec)
	if err != nil {
		return nil, err
	}
	// The first target anchors the probe and the admin churn: in a cluster
	// run that is the router, which replicates patches to every shard.
	cfg.URL = targets[0]

	client := &http.Client{
		Timeout: cfg.Timeout,
		Transport: &http.Transport{
			MaxIdleConns:        cfg.Concurrency * 2,
			MaxIdleConnsPerHost: cfg.Concurrency * 2,
		},
	}
	w, err := newWorkload(cfg, client)
	if err != nil {
		return nil, err
	}

	ctx, cancel := context.WithTimeout(context.Background(), cfg.Duration)
	defer cancel()

	// Open-loop pacing: a pacer feeds tokens at the target rate; tokens the
	// workers cannot absorb pile into the buffer and are delivered late —
	// the classic coordinated-omission-resistant shape without unbounded
	// goroutine growth.
	var tokens chan struct{}
	if cfg.QPS > 0 {
		tokens = make(chan struct{}, 4*cfg.Concurrency)
		interval := time.Duration(float64(time.Second) / cfg.QPS)
		if interval <= 0 {
			interval = time.Microsecond
		}
		go func() {
			tick := time.NewTicker(interval)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					select {
					case tokens <- struct{}{}:
					default: // workers saturated and buffer full: shed the tick
					}
				}
			}
		}()
	}

	// Optional admin churn: a keyword flaps on node 0 at the configured
	// period, exercising snapshot swaps under load.
	var patches, patchErrs atomic.Int64
	if cfg.ChurnEvery > 0 {
		go func() {
			tick := time.NewTicker(cfg.ChurnEvery)
			defer tick.Stop()
			add := true
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					if churn(client, cfg.URL, add) == nil {
						patches.Add(1)
					} else {
						patchErrs.Add(1)
					}
					add = !add
				}
			}
		}()
	}

	// Per-worker, per-target accumulation: no locks on the hot path.
	type workerResult struct {
		latencies [][]float64 // per target, milliseconds
		outcomes  []Outcomes  // per target
	}
	results := make([]workerResult, cfg.Concurrency)
	for i := range results {
		results[i].latencies = make([][]float64, len(targets))
		results[i].outcomes = make([]Outcomes, len(targets))
	}
	// Targets rotate per request across all workers, so every target sees
	// an equal slice of the identical workload stream.
	var rr atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < cfg.Concurrency; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(i)*7919))
			res := &results[i]
			for {
				if tokens != nil {
					select {
					case <-ctx.Done():
						return
					case <-tokens:
					}
				} else if ctx.Err() != nil {
					return
				}
				req := w.generate(rng)
				ti := int(rr.Add(1)-1) % len(targets)
				t0 := time.Now()
				status, err := fire(ctx, client, targets[ti], req)
				if ctx.Err() != nil && err != nil {
					// The run deadline cut this request off mid-flight; it
					// says nothing about the server.
					return
				}
				classify(status, err)(&res.outcomes[ti])
				if err == nil {
					res.latencies[ti] = append(res.latencies[ti], float64(time.Since(t0).Microseconds())/1e3)
				}
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Merge per target, then aggregate.
	perTarget := make([]TargetReport, len(targets))
	perLats := make([][]float64, len(targets))
	var all []float64
	var out Outcomes
	for ti, target := range targets {
		tr := &perTarget[ti]
		tr.URL = target
		for i := range results {
			perLats[ti] = append(perLats[ti], results[i].latencies[ti]...)
			addOutcomes(&tr.Outcomes, results[i].outcomes[ti])
		}
		tr.Requests = tr.Outcomes.total()
		if elapsed > 0 {
			tr.ThroughputQPS = float64(tr.Requests) / elapsed.Seconds()
		}
		if tr.Requests > 0 {
			tr.ErrorRate = float64(tr.Outcomes.Error) / float64(tr.Requests)
			tr.RejectedRate = float64(tr.Outcomes.Rejected) / float64(tr.Requests)
		}
		tr.Latency = summarize(perLats[ti])
		all = append(all, perLats[ti]...)
		addOutcomes(&out, tr.Outcomes)
	}

	rep := &Report{
		Target:          strings.Join(targets, ","),
		DurationSeconds: elapsed.Seconds(),
		Requests:        out.total(),
		Outcomes:        out,
		AdminPatches:    int(patches.Load()),
		AdminErrors:     int(patchErrs.Load()),
		SLOViolations:   []string{},
	}
	if len(targets) > 1 {
		rep.Targets = perTarget
	}
	if elapsed > 0 {
		rep.ThroughputQPS = float64(out.total()) / elapsed.Seconds()
	}
	if n := out.total(); n > 0 {
		rep.ErrorRate = float64(out.Error) / float64(n)
		rep.RejectedRate = float64(out.Rejected) / float64(n)
	}
	rep.Latency = summarize(all)
	rep.evalSLO(cfg)
	return rep, nil
}

// addOutcomes accumulates src into dst.
func addOutcomes(dst *Outcomes, src Outcomes) {
	dst.OK += src.OK
	dst.NoRoute += src.NoRoute
	dst.Rejected += src.Rejected
	dst.ClientError += src.ClientError
	dst.Error += src.Error
}

// summarize computes the latency block over samples (sorted in place).
func summarize(lats []float64) Latency {
	if len(lats) == 0 {
		return Latency{}
	}
	sort.Float64s(lats)
	sum := 0.0
	for _, v := range lats {
		sum += v
	}
	return Latency{
		MeanMS: sum / float64(len(lats)),
		P50MS:  percentile(lats, 0.50),
		P95MS:  percentile(lats, 0.95),
		P99MS:  percentile(lats, 0.99),
		MaxMS:  lats[len(lats)-1],
	}
}

// evalSLO fills SLOViolations and Pass against the configured gates.
func (r *Report) evalSLO(cfg config) {
	violate := func(format string, args ...any) {
		r.SLOViolations = append(r.SLOViolations, fmt.Sprintf(format, args...))
	}
	if r.Requests == 0 {
		violate("no requests completed")
	}
	// Thresholds in fractional milliseconds: Duration.Milliseconds would
	// truncate a 500µs or 1.5ms SLO.
	if cfg.SLOP50 > 0 && r.Latency.P50MS > cfg.SLOP50.Seconds()*1000 {
		violate("p50 %.1fms exceeds SLO %s", r.Latency.P50MS, cfg.SLOP50)
	}
	if cfg.SLOP99 > 0 && r.Latency.P99MS > cfg.SLOP99.Seconds()*1000 {
		violate("p99 %.1fms exceeds SLO %s", r.Latency.P99MS, cfg.SLOP99)
	}
	if cfg.SLOMaxErrorRate >= 0 && r.ErrorRate > cfg.SLOMaxErrorRate {
		violate("error rate %.4f exceeds SLO %.4f (%d errors)", r.ErrorRate, cfg.SLOMaxErrorRate, r.Outcomes.Error)
	}
	if cfg.SLOMinQPS > 0 && r.ThroughputQPS < cfg.SLOMinQPS {
		violate("throughput %.1f qps below SLO %.1f", r.ThroughputQPS, cfg.SLOMinQPS)
	}
	if cfg.Require429 && r.Outcomes.Rejected == 0 {
		violate("expected 429 rejections under oversaturation, saw none")
	}
	// Per-target gates: each target of a -targets run must clear the latency
	// and error SLOs on its own, and must have seen traffic at all.
	for i := range r.Targets {
		tr := &r.Targets[i]
		if tr.Requests == 0 {
			violate("target %s received no requests", tr.URL)
			continue
		}
		if cfg.SLOP50 > 0 && tr.Latency.P50MS > cfg.SLOP50.Seconds()*1000 {
			violate("target %s p50 %.1fms exceeds SLO %s", tr.URL, tr.Latency.P50MS, cfg.SLOP50)
		}
		if cfg.SLOP99 > 0 && tr.Latency.P99MS > cfg.SLOP99.Seconds()*1000 {
			violate("target %s p99 %.1fms exceeds SLO %s", tr.URL, tr.Latency.P99MS, cfg.SLOP99)
		}
		if cfg.SLOMaxErrorRate >= 0 && tr.ErrorRate > cfg.SLOMaxErrorRate {
			violate("target %s error rate %.4f exceeds SLO %.4f (%d errors)", tr.URL, tr.ErrorRate, cfg.SLOMaxErrorRate, tr.Outcomes.Error)
		}
	}
	if r.Outcomes.ClientError > 0 {
		violate("%d client_error responses: the driver sent malformed requests", r.Outcomes.ClientError)
	}
	r.Pass = len(r.SLOViolations) == 0
}

// percentile reads the q-quantile from sorted (ascending) samples.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// fire POSTs one route request and returns the HTTP status.
func fire(ctx context.Context, client *http.Client, base string, req korapi.Request) (int, error) {
	buf, err := json.Marshal(req)
	if err != nil {
		return 0, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/route", bytes.NewReader(buf))
	if err != nil {
		return 0, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(hreq)
	if err != nil {
		return 0, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, nil
}

// churn flaps a marker keyword on node 0 through the admin patch endpoint.
func churn(client *http.Client, base string, add bool) error {
	d := korapi.Delta{}
	patch := []korapi.DeltaKeywords{{Node: 0, Keywords: []string{"korload_churn_marker"}}}
	if add {
		d.AddKeywords = patch
	} else {
		d.RemoveKeywords = patch
	}
	buf, err := json.Marshal(d)
	if err != nil {
		return err
	}
	resp, err := client.Post(base+"/v1/admin/patch", "application/json", bytes.NewReader(buf))
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("admin patch: status %d", resp.StatusCode)
	}
	return nil
}

// getJSON fetches url and decodes the JSON body into out.
func getJSON(client *http.Client, url string, out any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("%s: status %d (%s)", url, resp.StatusCode, body)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
