package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"kor/internal/analysis"
)

// writeFixtureModule lays down a throwaway module with one errwrap
// violation and returns its root.
func writeFixtureModule(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	files := map[string]string{
		"go.mod": "module m\n\ngo 1.24\n",
		"m.go": `package m

import (
	"errors"
	"io"
)

var ErrBoom = errors.New("boom")

func Classify(err error) string {
	if err == ErrBoom {
		return "boom"
	}
	if errors.Is(err, io.EOF) {
		return "eof"
	}
	return "other"
}
`,
	}
	for name, body := range files {
		if err := os.WriteFile(filepath.Join(root, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func runCapture(t *testing.T, argv ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr strings.Builder
	code := run(argv, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestRunFindsViolations(t *testing.T) {
	root := writeFixtureModule(t)
	code, out, _ := runCapture(t, "-root", root, "./...")
	if code != 1 {
		t.Fatalf("exit = %d, want 1; output:\n%s", code, out)
	}
	if !strings.Contains(out, "m.go:11: [errwrap]") {
		t.Errorf("finding line missing from output:\n%s", out)
	}
	if !strings.Contains(out, "DESIGN.md#static-analysis") {
		t.Errorf("remediation hint missing from output:\n%s", out)
	}
}

func TestRunDisableRule(t *testing.T) {
	root := writeFixtureModule(t)
	code, out, _ := runCapture(t, "-root", root, "-disable", "errwrap", "./...")
	if code != 0 {
		t.Fatalf("exit = %d, want 0; output:\n%s", code, out)
	}
}

func TestRunEnableSubset(t *testing.T) {
	root := writeFixtureModule(t)
	code, out, _ := runCapture(t, "-root", root, "-enable", "snapshot-pin,ctx-flow", "./...")
	if code != 0 {
		t.Fatalf("exit = %d, want 0; output:\n%s", code, out)
	}
}

func TestRunList(t *testing.T) {
	code, out, _ := runCapture(t, "-list")
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	for _, a := range analysis.All() {
		if !strings.Contains(out, a.Name) {
			t.Errorf("-list output missing rule %s:\n%s", a.Name, out)
		}
	}
}

func TestRunOperationalErrors(t *testing.T) {
	root := writeFixtureModule(t)
	cases := [][]string{
		{"-root", root, "-enable", "no-such-rule", "./..."},
		{"-root", root, "-disable", "errwrap,snapshot-pin,plan-lifecycle,ctx-flow,metric-labels,definitive-outcome", "./..."},
		{"-root", root, "m/does/not/exist"},
		{"-not-a-flag"},
	}
	for _, argv := range cases {
		if code, out, errOut := runCapture(t, argv...); code != 2 {
			t.Errorf("run(%v) exit = %d, want 2\nstdout: %s\nstderr: %s", argv, code, out, errOut)
		}
	}
}

func TestResolvePatterns(t *testing.T) {
	root := writeFixtureModule(t)
	loader, err := analysis.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	got, err := resolvePatterns(loader, []string{"./...", "./.", "m"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "m" {
		t.Fatalf("resolvePatterns = %v, want [m]", got)
	}
}
