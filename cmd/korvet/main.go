// Command korvet is the project's static-analysis gate: it type-checks the
// module with nothing but the standard library and runs the analyzer suite
// in internal/analysis over every package, printing machine-readable
// findings as
//
//	file:line: [rule-id] message
//
// Usage:
//
//	go run ./cmd/korvet ./...          # whole module (the CI gate)
//	go run ./cmd/korvet ./internal/core kor/internal/apsp
//	go run ./cmd/korvet -list          # rule catalogue
//	go run ./cmd/korvet -disable errwrap ./...
//	go run ./cmd/korvet -enable snapshot-pin,plan-lifecycle ./...
//
// Exit status: 0 clean, 1 findings, 2 operational failure (bad flags,
// unparseable or untypeable code). Suppress a single finding with
// //korvet:ignore rule-id reason — the reason is mandatory and unused
// suppressions are findings, so the ignore surface cannot rot.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"kor/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("korvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		list    = fs.Bool("list", false, "print the rule catalogue and exit")
		enable  = fs.String("enable", "", "comma-separated rule ids to run (default: all)")
		disable = fs.String("disable", "", "comma-separated rule ids to skip")
		tests   = fs.Bool("tests", false, "also analyze in-package _test.go files")
		root    = fs.String("root", "", "module root (default: walk up from cwd to go.mod)")
	)
	if err := fs.Parse(argv); err != nil {
		return 2
	}

	suite := analysis.All()
	if *list {
		for _, a := range suite {
			fmt.Fprintf(stdout, "%-20s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	active, err := selectRules(suite, *enable, *disable)
	if err != nil {
		fmt.Fprintln(stderr, "korvet:", err)
		return 2
	}

	moduleRoot := *root
	if moduleRoot == "" {
		moduleRoot, err = findModuleRoot()
		if err != nil {
			fmt.Fprintln(stderr, "korvet:", err)
			return 2
		}
	}
	loader, err := analysis.NewLoader(moduleRoot)
	if err != nil {
		fmt.Fprintln(stderr, "korvet:", err)
		return 2
	}
	loader.IncludeTests = *tests

	paths, err := resolvePatterns(loader, fs.Args())
	if err != nil {
		fmt.Fprintln(stderr, "korvet:", err)
		return 2
	}

	var pkgs []*analysis.Package
	for _, p := range paths {
		pkg, err := loader.Load(p)
		if err != nil {
			fmt.Fprintln(stderr, "korvet:", err)
			return 2
		}
		pkgs = append(pkgs, pkg)
	}

	findings := analysis.RunAnalyzers(pkgs, active, loader.IsLabelFunc)
	for _, f := range findings {
		line := f
		if rel, err := filepath.Rel(moduleRoot, f.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			line.Pos.Filename = rel
		}
		fmt.Fprintln(stdout, line.String())
	}
	if len(findings) > 0 {
		printRemediation(stdout, findings)
		return 1
	}
	return 0
}

// selectRules applies -enable/-disable to the suite.
func selectRules(suite []*analysis.Analyzer, enable, disable string) ([]*analysis.Analyzer, error) {
	byName := make(map[string]*analysis.Analyzer, len(suite))
	for _, a := range suite {
		byName[a.Name] = a
	}
	parse := func(csv string) (map[string]bool, error) {
		if csv == "" {
			return nil, nil
		}
		set := make(map[string]bool)
		for _, id := range strings.Split(csv, ",") {
			id = strings.TrimSpace(id)
			if id == "" {
				continue
			}
			if byName[id] == nil {
				return nil, fmt.Errorf("unknown rule %q (see korvet -list)", id)
			}
			set[id] = true
		}
		return set, nil
	}
	on, err := parse(enable)
	if err != nil {
		return nil, err
	}
	off, err := parse(disable)
	if err != nil {
		return nil, err
	}
	var active []*analysis.Analyzer
	for _, a := range suite {
		if on != nil && !on[a.Name] {
			continue
		}
		if off[a.Name] {
			continue
		}
		active = append(active, a)
	}
	if len(active) == 0 {
		return nil, fmt.Errorf("rule selection leaves no active rules")
	}
	return active, nil
}

// findModuleRoot walks up from the working directory to the nearest go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory (use -root)")
		}
		dir = parent
	}
}

// resolvePatterns expands the package arguments: "./..." (all module
// packages), relative directories ("./internal/core"), or import paths
// ("kor/internal/core"). No arguments means "./...".
func resolvePatterns(l *analysis.Loader, args []string) ([]string, error) {
	if len(args) == 0 {
		args = []string{"./..."}
	}
	seen := make(map[string]bool)
	var out []string
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, arg := range args {
		switch {
		case arg == "./..." || arg == "...":
			all, err := l.ModulePackages()
			if err != nil {
				return nil, err
			}
			for _, p := range all {
				add(p)
			}
		case strings.HasPrefix(arg, "./"):
			rel := filepath.ToSlash(filepath.Clean(strings.TrimPrefix(arg, "./")))
			if rel == "." {
				add(l.Module)
			} else {
				add(l.Module + "/" + rel)
			}
		default:
			add(arg)
		}
	}
	sort.Strings(out)
	return out, nil
}

// printRemediation summarizes which rules fired and where their contracts
// are documented, so a CI failure is actionable without spelunking.
func printRemediation(stdout io.Writer, findings []analysis.Finding) {
	rules := make(map[string]int)
	for _, f := range findings {
		rules[f.Rule]++
	}
	ids := make([]string, 0, len(rules))
	for id := range rules {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	fmt.Fprintf(stdout, "\nkorvet: %d finding(s). Remediation:\n", len(findings))
	for _, id := range ids {
		fmt.Fprintf(stdout, "  [%s] ×%d — contract documented in DESIGN.md#static-analysis; fix the site or add `//korvet:ignore %s <reason>` with justification\n", id, rules[id], id)
	}
}
