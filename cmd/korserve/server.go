package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"runtime"
	"strconv"
	"time"

	"kor"
	"kor/internal/metrics"
	"kor/korapi"
)

// server holds the shared engine and the request policy. Handlers marshal
// straight to and from the korapi wire types; the engine's Run entrypoint
// does the dispatching.
type server struct {
	eng       *kor.Engine
	graphPath string        // graph file for /v1/admin/reload, "" = reload disabled
	timeout   time.Duration // per-request search deadline, 0 = none
	maxPar    int           // worker-pool cap for /v1/batch

	role    string // serving role reported in /v1/stats, "" = standalone
	shardID string // shard this replica serves, "" = unsharded

	lim *limiter          // admission gate for query endpoints, nil = unlimited
	reg *metrics.Registry // exposed at GET /metrics, nil = endpoint disabled
	met *serverMetrics    // nil exactly when reg is nil
}

// serverConfig is the request policy newServer wires into the handler set.
type serverConfig struct {
	graphPath string        // graph file for /v1/admin/reload, "" = reload disabled
	timeout   time.Duration // per-request search deadline, 0 = none
	maxPar    int           // worker-pool cap for /v1/batch, 0 = GOMAXPROCS

	// maxInFlight bounds concurrently running query requests (/v1/route,
	// /v1/batch); 0 disables admission control.
	maxInFlight int
	// maxQueue bounds requests waiting for admission once the in-flight
	// limit is reached; beyond it requests are shed immediately.
	maxQueue int
	// queueWait bounds how long a queued request waits before it is shed.
	queueWait time.Duration

	// role and shardID identify this process inside a cluster: role
	// "replica" plus the shard name from the shard map. Both surface in
	// /v1/stats so a korrouter can verify it is talking to the backend it
	// thinks it is. Empty = standalone.
	role    string
	shardID string

	// registry, when non-nil, is served at GET /metrics; the server
	// registers its own korserve_ metrics there (the caller typically also
	// passed it to the engine for the kor_engine_ set).
	registry *metrics.Registry
}

// serverMetrics are the HTTP- and admission-level instruments.
type serverMetrics struct {
	requests  *metrics.CounterVec   // korserve_http_requests_total{endpoint,code}
	latency   *metrics.HistogramVec // korserve_http_request_seconds{endpoint}
	admission *metrics.CounterVec   // korserve_admission_total{outcome}
}

func newServer(eng *kor.Engine, cfg serverConfig) *server {
	s := &server{
		eng:       eng,
		graphPath: cfg.graphPath,
		timeout:   cfg.timeout,
		maxPar:    cfg.maxPar,
		role:      cfg.role,
		shardID:   cfg.shardID,
		reg:       cfg.registry,
	}
	if cfg.maxInFlight > 0 {
		s.lim = newLimiter(cfg.maxInFlight, cfg.maxQueue, cfg.queueWait)
	}
	if s.reg != nil {
		s.met = &serverMetrics{
			requests: s.reg.CounterVec("korserve_http_requests_total",
				"HTTP requests served, by endpoint and status code.", "endpoint", "code"),
			latency: s.reg.HistogramVec("korserve_http_request_seconds",
				"HTTP request wall time in seconds, by endpoint.", nil, "endpoint"),
			admission: s.reg.CounterVec("korserve_admission_total",
				"Admission decisions on query endpoints (admitted, rejected, canceled).", "outcome"),
		}
		if s.lim != nil {
			s.reg.GaugeFunc("korserve_inflight_requests",
				"Query requests currently admitted and running.",
				func() float64 { return float64(s.lim.inFlight()) })
			s.reg.GaugeFunc("korserve_queue_depth",
				"Query requests currently waiting for admission.",
				func() float64 { return float64(s.lim.queued()) })
		}
	}
	return s
}

// routes builds the HTTP surface: the versioned /v1 endpoints plus the
// pre-/v1 spellings as deprecated aliases onto the same handlers. Query
// endpoints (route, batch) pass the admission gate; cheap reads and admin
// calls do not — an operator must be able to see /v1/stats and /metrics on
// a saturated server, that being exactly when they are needed.
func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	route := s.limited(s.handleRouteGet)
	routePost := s.limited(s.handleRoutePost)
	batch := s.limited(s.handleBatch)
	mux.HandleFunc("GET /v1/route", s.instrument("route", route))
	mux.HandleFunc("POST /v1/route", s.instrument("route", routePost))
	mux.HandleFunc("POST /v1/batch", s.instrument("batch", batch))
	mux.HandleFunc("GET /v1/nodes/{id}", s.instrument("nodes", s.handleNode))
	mux.HandleFunc("GET /v1/keywords", s.instrument("keywords", s.handleKeywords))
	mux.HandleFunc("GET /v1/stats", s.instrument("stats", s.handleStats))
	mux.HandleFunc("POST /v1/admin/patch", s.instrument("admin", s.handleAdminPatch))
	mux.HandleFunc("POST /v1/admin/reload", s.instrument("admin", s.handleAdminReload))
	if s.reg != nil {
		mux.HandleFunc("GET /metrics", s.handleMetrics)
	}

	// Deprecated pre-/v1 aliases; they answer with the /v1 bodies and a
	// Deprecation header pointing at the successor.
	mux.HandleFunc("GET /query", deprecated("/v1/route", s.instrument("route", route)))
	mux.HandleFunc("POST /batch", deprecated("/v1/batch", s.instrument("batch", batch)))
	mux.HandleFunc("GET /node/{id}", deprecated("/v1/nodes/{id}", s.instrument("nodes", s.handleNode)))
	mux.HandleFunc("GET /keywords", deprecated("/v1/keywords", s.instrument("keywords", s.handleKeywords)))
	mux.HandleFunc("GET /stats", deprecated("/v1/stats", s.instrument("stats", s.handleStats)))
	return mux
}

// limited wraps a query handler behind the admission gate. A shed request
// is answered with the 429 overloaded envelope and a Retry-After hint; a
// client that disconnected while queued gets the 499 envelope (never read,
// but it keeps the access log honest).
func (s *server) limited(h http.HandlerFunc) http.HandlerFunc {
	if s.lim == nil {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		if err := s.lim.acquire(r.Context()); err != nil {
			if errors.Is(err, errSaturated) {
				s.countAdmission("rejected")
				w.Header().Set("Retry-After", strconv.Itoa(s.lim.retryAfterSeconds()))
				writeError(w, &korapi.Error{
					Code:    korapi.CodeOverloaded,
					Message: "server is at its in-flight limit; retry after backoff",
				})
				return
			}
			s.countAdmission("canceled")
			writeError(w, &korapi.Error{Code: korapi.CodeCanceled, Message: "client went away while queued"})
			return
		}
		defer s.lim.release()
		s.countAdmission("admitted")
		h(w, r)
	}
}

// countAdmission records one admission-gate decision.
//
// korvet:labels — callers pass "admitted", "rejected" or "canceled".
func (s *server) countAdmission(outcome string) {
	if s.met != nil {
		s.met.admission.With(outcome).Inc()
	}
}

// statusWriter captures the status code a handler wrote, for the request
// counter's code label.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument counts and times requests per endpoint. The endpoint label is
// the coarse handler name, never the raw path — paths carry user input and
// would blow up the label cardinality. The endpoint is fixed per wrapped
// handler, so its histogram child is resolved once here; the request
// counter's code label varies and is looked up per request.
//
// korvet:labels — endpoint is a handler-name literal at every call site.
func (s *server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	if s.met == nil {
		return h
	}
	latency := s.met.latency.With(endpoint)
	return func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		h(sw, r)
		s.met.requests.With(endpoint, korapi.StatusLabel(sw.status)).Inc()
		latency.Observe(time.Since(start).Seconds())
	}
}

// handleMetrics serves the Prometheus text exposition.
func (s *server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.reg.WritePrometheus(w); err != nil {
		log.Printf("korserve: writing metrics: %v", err)
	}
}

// deprecated marks a legacy path while serving the modern handler.
func deprecated(successor string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", "<"+successor+">; rel=\"successor-version\"")
		h(w, r)
	}
}

// queryCtx derives the search context for one request: the client's context
// (so a dropped connection aborts the search) plus the configured deadline.
func (s *server) queryCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if s.timeout <= 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), s.timeout)
}

// requestFromParams decodes a korapi.Request from URL query parameters.
// The parsing lives in korapi.RequestFromParams so korrouter accepts the
// exact same GET spelling.
func requestFromParams(qv map[string][]string) (korapi.Request, *korapi.Error) {
	return korapi.RequestFromParams(qv)
}

func (s *server) handleRouteGet(w http.ResponseWriter, r *http.Request) {
	req, apiErr := requestFromParams(r.URL.Query())
	if apiErr != nil {
		writeError(w, apiErr)
		return
	}
	s.serveRoute(w, r, req)
}

func (s *server) handleRoutePost(w http.ResponseWriter, r *http.Request) {
	var req korapi.Request
	body := http.MaxBytesReader(w, r.Body, 1<<20)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeError(w, &korapi.Error{Code: korapi.CodeBadRequest, Message: "bad request body: " + err.Error()})
		return
	}
	s.serveRoute(w, r, req)
}

// serveRoute answers one route request, shared by the GET and POST forms.
// format=geojson renders the best route as a GeoJSON FeatureCollection
// instead of the korapi response.
func (s *server) serveRoute(w http.ResponseWriter, r *http.Request, req korapi.Request) {
	format := r.URL.Query().Get("format")
	if format != "" && format != "json" && format != "geojson" {
		writeError(w, &korapi.Error{Code: korapi.CodeBadRequest, Message: "unknown format " + format})
		return
	}
	korReq, err := req.KorRequest()
	if err != nil {
		writeError(w, korapi.ErrorFrom(err))
		return
	}

	ctx, cancel := s.queryCtx(r)
	defer cancel()
	resp, err := s.eng.Run(ctx, korReq)
	if apiErr := korapi.ErrorFrom(err); apiErr != nil {
		writeError(w, apiErr)
		return
	}
	// A greedy budget overshoot is a 200 with the violating routes
	// (Feasible=false) and a warning — not an error envelope: the caller
	// asked a heuristic and gets its best effort plus the reason it is
	// imperfect.
	warning := korapi.WarningFrom(err)

	// Render against the graph that computed the routes, not the engine's
	// current one: a concurrent swap may have installed a different (even
	// smaller) graph, whose names/positions would mislabel — or
	// out-of-range — the route's node IDs.
	g := resp.Graph()
	if format == "geojson" {
		if !g.HasPositions() {
			writeError(w, &korapi.Error{Code: korapi.CodeBadRequest, Message: "graph carries no coordinates for GeoJSON"})
			return
		}
		buf, err := kor.RouteGeoJSON(g, resp.Best())
		if err != nil {
			writeError(w, &korapi.Error{Code: korapi.CodeInternal, Message: err.Error()})
			return
		}
		w.Header().Set("Content-Type", "application/geo+json")
		if _, err := w.Write(buf); err != nil {
			log.Printf("korserve: writing geojson: %v", err)
		}
		return
	}
	out := korapi.ResponseFromKor(g, resp, req.Metrics)
	out.Warning = warning
	writeJSON(w, out)
}

// handleBatch answers many requests in one call via the engine's worker
// pool. Per-request failures come back inline so one infeasible query does
// not fail the batch.
func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var batch korapi.BatchRequest
	// Bound the body before decoding: the request-count limit below cannot
	// protect memory if the decoder has already swallowed the payload.
	body := http.MaxBytesReader(w, r.Body, 1<<20)
	if err := json.NewDecoder(body).Decode(&batch); err != nil {
		writeError(w, &korapi.Error{Code: korapi.CodeBadRequest, Message: "bad batch body: " + err.Error()})
		return
	}
	wireReqs := batch.All()
	if len(wireReqs) == 0 || len(wireReqs) > 1024 {
		writeError(w, &korapi.Error{Code: korapi.CodeBadRequest, Message: "batch must contain 1..1024 requests"})
		return
	}
	// Bound the client-requested parallelism: the configured cap, or
	// GOMAXPROCS when none was set — never let a request pick its own
	// unbounded worker count.
	maxPar := s.maxPar
	if maxPar <= 0 {
		maxPar = runtime.GOMAXPROCS(0)
	}
	par := batch.Parallelism
	if par < 1 || par > maxPar {
		par = maxPar
	}
	if par > len(wireReqs) {
		// SearchBatch never runs more workers than requests; taking slots
		// for workers that would not exist would starve /v1/route for
		// nothing.
		par = len(wireReqs)
	}
	// Under admission control a batch is worth its worker count, not one
	// slot: widen the pool only by slots that are free right now, so the
	// total number of concurrent searches (single routes + all batch
	// workers) never exceeds the in-flight limit. The slot this request was
	// admitted on guarantees par ≥ 1.
	if s.lim != nil {
		extra := s.lim.tryAcquireExtra(par - 1)
		defer s.lim.releaseExtra(extra)
		par = 1 + extra
	}
	requests := make([]kor.Request, len(wireReqs))
	for i, wr := range wireReqs {
		kr, err := wr.KorRequest()
		if err != nil {
			writeError(w, korapi.ErrorFrom(fmt.Errorf("request %d: %w", i, err)))
			return
		}
		requests[i] = kr
	}

	ctx, cancel := s.queryCtx(r)
	defer cancel()
	// A deadline firing mid-batch must not discard the requests that did
	// finish: SearchBatch fills every slot either way, so always return the
	// per-request results — entries cut short carry their error inline —
	// and flag the batch as incomplete.
	results, batchErr := s.eng.SearchBatch(ctx, requests, par)

	out := korapi.BatchResponse{Results: make([]korapi.BatchResult, len(results)), Incomplete: batchErr != nil}
	for i, br := range results {
		if apiErr := korapi.ErrorFrom(br.Err); apiErr != nil {
			out.Results[i] = korapi.BatchResult{Error: apiErr}
			continue
		}
		// Same as serveRoute: render each slot against the snapshot graph
		// that answered it, immune to concurrent swaps.
		resp := korapi.ResponseFromKor(br.Response.Graph(), br.Response, wireReqs[i].Metrics)
		resp.Warning = korapi.WarningFrom(br.Err)
		out.Results[i] = korapi.BatchResult{Response: &resp}
	}
	writeJSON(w, out)
}

func (s *server) handleNode(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 32)
	g := s.eng.Graph()
	if err != nil || !g.Valid(kor.NodeID(id)) {
		writeError(w, &korapi.Error{Code: korapi.CodeNotFound, Message: "no such node"})
		return
	}
	v := kor.NodeID(id)
	keywords := make([]string, 0, len(g.Terms(v)))
	for _, t := range g.Terms(v) {
		keywords = append(keywords, g.Vocab().Name(t))
	}
	pos := g.Position(v)
	writeJSON(w, korapi.Node{
		ID:       id,
		Name:     g.Name(v),
		Keywords: keywords,
		X:        pos.X,
		Y:        pos.Y,
		Degree:   g.OutDegree(v),
	})
}

// handleAdminPatch applies a JSON delta to the serving graph: in-flight
// queries finish on the old snapshot, subsequent queries see the patched
// graph, and the result cache is flushed (stale entries were already
// unreachable through the fingerprint in every cache key).
func (s *server) handleAdminPatch(w http.ResponseWriter, r *http.Request) {
	var wire korapi.Delta
	body := http.MaxBytesReader(w, r.Body, 1<<20)
	if err := json.NewDecoder(body).Decode(&wire); err != nil {
		writeError(w, &korapi.Error{Code: korapi.CodeBadRequest, Message: "bad delta body: " + err.Error()})
		return
	}
	if wire.Empty() {
		writeError(w, &korapi.Error{Code: korapi.CodeBadRequest, Message: "delta contains no changes"})
		return
	}
	d, err := wire.KorDelta()
	if err != nil {
		writeError(w, korapi.ErrorFrom(err))
		return
	}
	if _, err := s.eng.Patch(d); err != nil {
		writeError(w, korapi.ErrorFrom(err))
		return
	}
	s.warnIfDegraded()
	s.writeAdmin(w)
}

// warnIfDegraded logs when an admin update left the serving graph out of
// step with the configured persistent distance index. The condition is also
// visible in /v1/stats and the kor_engine_oracle_degraded metric; the log
// line is for the operator tailing the server during the update.
func (s *server) warnIfDegraded() {
	if ost := s.eng.OracleStatus(); ost.Degraded {
		log.Printf("korserve: graph no longer matches the persistent distance index (built for %016x); serving from a lazy oracle until a matching graph is installed",
			ost.IndexFingerprint)
	}
}

// handleAdminReload re-reads the graph file the server was started from and
// swaps it in, the full-refresh counterpart of the incremental patch.
func (s *server) handleAdminReload(w http.ResponseWriter, r *http.Request) {
	if s.graphPath == "" {
		writeError(w, &korapi.Error{Code: korapi.CodeBadRequest, Message: "server has no graph file to reload"})
		return
	}
	g, err := kor.LoadGraph(s.graphPath)
	if err != nil {
		writeError(w, &korapi.Error{Code: korapi.CodeInternal, Message: "reloading graph: " + err.Error()})
		return
	}
	info, err := s.eng.Swap(g)
	if err != nil {
		writeError(w, korapi.ErrorFrom(err))
		return
	}
	log.Printf("korserve: reloaded %s: generation %d, fingerprint %016x", s.graphPath, info.Generation, info.Fingerprint)
	s.warnIfDegraded()
	s.writeAdmin(w)
}

// writeAdmin reports the snapshot now serving queries. Engine.Stats reads
// the summary and the identity from one snapshot load, so the fingerprint,
// generation and node/edge counts are always mutually consistent — if
// another admin call raced in between, the response reflects that newer
// snapshot rather than mixing two versions.
func (s *server) writeAdmin(w http.ResponseWriter) {
	st, info := s.eng.Stats()
	writeJSON(w, korapi.AdminResponse{
		Snapshot: korapi.SnapshotFromKor(info),
		Nodes:    st.Nodes,
		Edges:    st.Edges,
	})
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	// Engine.Stats serves the scan memoized per snapshot — a stats poller
	// costs one O(V+E) scan per graph version, not per request.
	st, info := s.eng.Stats()
	out := korapi.Stats{
		Nodes:        st.Nodes,
		Edges:        st.Edges,
		Terms:        st.Terms,
		AvgOutDegree: st.AvgOutDegree,
		MaxOutDegree: st.MaxOutDegree,
		AvgTerms:     st.AvgTerms,
		MinObjective: st.MinObjective,
		MaxObjective: st.MaxObjective,
		MinBudget:    st.MinBudget,
		MaxBudget:    st.MaxBudget,
		Isolated:     st.Isolated,
	}
	if cs, ok := s.eng.CacheStats(); ok {
		wire := korapi.CacheStatsFromKor(cs)
		out.Cache = &wire
	}
	snap := korapi.SnapshotFromKor(info)
	out.Snapshot = &snap
	out.Role = s.role
	out.Shard = s.shardID
	ost := s.eng.OracleStatus()
	oi := korapi.OracleInfo{
		Kind:       ost.Kind,
		Degraded:   ost.Degraded,
		IndexBytes: ost.IndexBytes,
		Mapped:     ost.Mapped,
		LoadMillis: float64(ost.LoadTime) / float64(time.Millisecond),
	}
	if ost.IndexFingerprint != 0 {
		oi.IndexFingerprint = fmt.Sprintf("%016x", ost.IndexFingerprint)
	}
	if ost.Degraded && !ost.DegradedSince.IsZero() {
		oi.DegradedSince = ost.DegradedSince.UTC().Format(time.RFC3339Nano)
	}
	out.Oracle = &oi
	writeJSON(w, out)
}

// handleKeywords serves keyword autocomplete:
// GET /v1/keywords?prefix=caf&limit=10
func (s *server) handleKeywords(w http.ResponseWriter, r *http.Request) {
	limit := 10
	if l := r.URL.Query().Get("limit"); l != "" {
		n, err := strconv.Atoi(l)
		if err != nil || n < 1 || n > 200 {
			writeError(w, &korapi.Error{Code: korapi.CodeBadRequest, Message: "limit must be an integer in 1..200"})
			return
		}
		limit = n
	}
	suggestions, err := s.eng.Suggest(r.URL.Query().Get("prefix"), limit)
	if err != nil {
		writeError(w, &korapi.Error{Code: korapi.CodeInternal, Message: err.Error()})
		return
	}
	out := korapi.KeywordsResponse{Keywords: make([]korapi.Keyword, len(suggestions))}
	for i, sg := range suggestions {
		out.Keywords[i] = korapi.Keyword{Keyword: sg.Keyword, Nodes: sg.Nodes}
	}
	writeJSON(w, out)
}

func writeJSON(w http.ResponseWriter, v any) { korapi.WriteJSON(w, v) }

// writeError emits the korapi error envelope with the code's HTTP status;
// the implementation is shared with korrouter via korapi.WriteError, so a
// single server and a cluster router shed with identical envelopes.
func writeError(w http.ResponseWriter, apiErr *korapi.Error) { korapi.WriteError(w, apiErr) }
