package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"kor"
	"kor/internal/geo"
	"kor/korapi"
)

// testGraph is the façade test city plus coordinates, so GeoJSON works.
func testGraph(t *testing.T) *kor.Graph {
	t.Helper()
	b := kor.NewBuilder()
	hotel := b.AddNode("hotel")
	cafe := b.AddNode("cafe", "jazz")
	park := b.AddNode("park")
	mall := b.AddNode("mall", "cafe")
	edges := []struct {
		from, to kor.NodeID
		o, c     float64
	}{
		{hotel, cafe, 0.7, 1.2}, {cafe, park, 0.3, 0.8}, {park, hotel, 0.5, 1.0},
		{cafe, mall, 0.4, 0.5}, {mall, park, 0.6, 0.9}, {hotel, park, 2.0, 0.4},
		{park, cafe, 0.3, 0.8},
	}
	for _, e := range edges {
		if err := b.AddEdge(e.from, e.to, e.o, e.c); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.SetName(hotel, "Grand Hotel"); err != nil {
		t.Fatal(err)
	}
	for i, v := range []kor.NodeID{hotel, cafe, park, mall} {
		if err := b.SetPosition(v, geo.Point{X: float64(i), Y: float64(i) * 2}); err != nil {
			t.Fatal(err)
		}
	}
	return b.MustBuild()
}

func testServer(t *testing.T, timeout time.Duration) *httptest.Server {
	ts, _ := testServerEngine(t, timeout)
	return ts
}

// testServerEngine also hands back the engine, for tests that drive swaps
// or inspect snapshots directly.
func testServerEngine(t *testing.T, timeout time.Duration) (*httptest.Server, *kor.Engine) {
	t.Helper()
	eng, err := kor.NewEngine(testGraph(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newServer(eng, serverConfig{timeout: timeout}).routes())
	t.Cleanup(ts.Close)
	return ts, eng
}

// get fetches a path and decodes the JSON body into out (unless nil).
func get(t *testing.T, ts *httptest.Server, path string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("decoding %s body %q: %v", path, body, err)
		}
	}
	return resp
}

func post(t *testing.T, ts *httptest.Server, path string, in, out any) *http.Response {
	t.Helper()
	buf, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("decoding %s body %q: %v", path, body, err)
		}
	}
	return resp
}

func wantEnvelope(t *testing.T, resp *http.Response, env korapi.ErrorEnvelope, status int, code korapi.ErrorCode) {
	t.Helper()
	if resp.StatusCode != status {
		t.Errorf("status = %d, want %d", resp.StatusCode, status)
	}
	if env.Error.Code != code {
		t.Errorf("error code = %q, want %q", env.Error.Code, code)
	}
	if env.Error.Message == "" {
		t.Error("error envelope carries no message")
	}
}

func TestServeV1Route(t *testing.T) {
	ts := testServer(t, 5*time.Second)
	var out korapi.Response
	resp := get(t, ts, "/v1/route?from=0&to=0&keywords=jazz,park&budget=4&metrics=true", &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if out.Algorithm != "bucketbound" {
		t.Errorf("algorithm = %q, want bucketbound", out.Algorithm)
	}
	if out.Bound < 2.39 || out.Bound > 2.41 {
		t.Errorf("bound = %v, want 2.4", out.Bound)
	}
	if len(out.Routes) != 1 || !out.Routes[0].Feasible {
		t.Fatalf("routes = %+v", out.Routes)
	}
	if out.Metrics == nil {
		t.Error("metrics=true did not attach metrics")
	}
	if out.Routes[0].Nodes[0] != 0 || out.Routes[0].Nodes[len(out.Routes[0].Nodes)-1] != 0 {
		t.Errorf("round trip endpoints wrong: %v", out.Routes[0].Nodes)
	}
}

func TestServeV1RoutePost(t *testing.T) {
	ts := testServer(t, 5*time.Second)
	eps := 0.1
	req := korapi.Request{
		From: 0, To: 2, Keywords: []string{"cafe"}, Budget: 6,
		Algorithm: "topk", K: 3,
		Options: &korapi.Options{Epsilon: &eps},
	}
	var out korapi.Response
	resp := post(t, ts, "/v1/route", req, &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if out.Algorithm != "topk" {
		t.Errorf("algorithm = %q, want topk", out.Algorithm)
	}
	if len(out.Routes) < 2 {
		t.Errorf("top-k returned %d routes", len(out.Routes))
	}
}

// TestServeV1RouteBadParams: every malformed numeric parameter is a hard
// 400 with the error envelope — nothing is silently ignored. Before /v1 a
// bad k was dropped on the floor.
func TestServeV1RouteBadParams(t *testing.T) {
	ts := testServer(t, 5*time.Second)
	cases := []struct {
		name, path string
		code       korapi.ErrorCode
	}{
		{"bad k", "/v1/route?from=0&to=2&keywords=cafe&budget=5&k=abc", korapi.CodeBadRequest},
		{"negative k", "/v1/route?from=0&to=2&keywords=cafe&budget=5&k=-3", korapi.CodeBadRequest},
		{"out-of-range from", "/v1/route?from=4294967296&to=2&keywords=cafe&budget=5", korapi.CodeBadRequest},
		{"bad from", "/v1/route?from=xyz&to=2&keywords=cafe&budget=5", korapi.CodeBadRequest},
		{"bad budget", "/v1/route?from=0&to=2&keywords=cafe&budget=much", korapi.CodeBadRequest},
		{"missing keywords", "/v1/route?from=0&to=2&budget=5", korapi.CodeBadRequest},
		{"bad epsilon value", "/v1/route?from=0&to=2&keywords=cafe&budget=5&epsilon=nope", korapi.CodeBadRequest},
		{"out-of-domain epsilon", "/v1/route?from=0&to=2&keywords=cafe&budget=5&epsilon=1.5", korapi.CodeBadRequest},
		{"bad width", "/v1/route?from=0&to=2&keywords=cafe&budget=5&width=0", korapi.CodeBadRequest},
		{"bad metrics", "/v1/route?from=0&to=2&keywords=cafe&budget=5&metrics=perhaps", korapi.CodeBadRequest},
		{"bad format", "/v1/route?from=0&to=2&keywords=cafe&budget=5&format=xml", korapi.CodeBadRequest},
		{"unknown algorithm", "/v1/route?from=0&to=2&keywords=cafe&budget=5&algorithm=warp", korapi.CodeUnknownAlgorithm},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var env korapi.ErrorEnvelope
			resp := get(t, ts, c.path, &env)
			wantEnvelope(t, resp, env, http.StatusBadRequest, c.code)
		})
	}
}

// TestServeErrorCodes maps the search outcomes onto statuses and codes:
// no feasible route → 404/no_route, unknown keyword → 400/unknown_keyword,
// deadline → 504/deadline_exceeded.
func TestServeErrorCodes(t *testing.T) {
	ts := testServer(t, 5*time.Second)

	var env korapi.ErrorEnvelope
	resp := get(t, ts, "/v1/route?from=0&to=2&keywords=jazz&budget=0.1", &env)
	wantEnvelope(t, resp, env, http.StatusNotFound, korapi.CodeNoRoute)

	env = korapi.ErrorEnvelope{}
	resp = get(t, ts, "/v1/route?from=0&to=2&keywords=spa&budget=5", &env)
	wantEnvelope(t, resp, env, http.StatusBadRequest, korapi.CodeUnknownKeyword)

	// A server whose deadline already passed when the search starts.
	tiny := testServer(t, time.Nanosecond)
	env = korapi.ErrorEnvelope{}
	resp = get(t, tiny, "/v1/route?from=0&to=2&keywords=cafe&budget=5", &env)
	wantEnvelope(t, resp, env, http.StatusGatewayTimeout, korapi.CodeDeadline)
}

func TestServeV1Batch(t *testing.T) {
	ts := testServer(t, 5*time.Second)
	eps := 0.1
	batch := korapi.BatchRequest{
		Requests: []korapi.Request{
			{From: 0, To: 2, Keywords: []string{"cafe"}, Budget: 5},
			{From: 0, To: 2, Keywords: []string{"cafe"}, Budget: 6, Algorithm: "topk", K: 3, Options: &korapi.Options{Epsilon: &eps}},
			{From: 0, To: 2, Keywords: []string{"spa"}, Budget: 5},
			{From: 0, To: 2, Keywords: []string{"cafe"}, Budget: 5, Algorithm: "exact"},
			{From: 0, To: 2, Keywords: []string{"cafe"}, Budget: 5, Algorithm: "warp"},
		},
	}
	var out korapi.BatchResponse
	resp := post(t, ts, "/v1/batch", batch, &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if len(out.Results) != 5 {
		t.Fatalf("results = %d, want 5", len(out.Results))
	}
	if out.Incomplete {
		t.Error("full batch flagged incomplete")
	}
	for _, i := range []int{0, 1, 3} {
		if out.Results[i].Response == nil || out.Results[i].Error != nil {
			t.Errorf("slot %d: %+v, want success", i, out.Results[i])
		}
	}
	if out.Results[1].Response != nil {
		if out.Results[1].Response.Algorithm != "topk" {
			t.Errorf("slot 1 ran %q, want topk", out.Results[1].Response.Algorithm)
		}
		if len(out.Results[1].Response.Routes) < 2 {
			t.Errorf("slot 1 top-k returned %d routes", len(out.Results[1].Response.Routes))
		}
	}
	if out.Results[3].Response != nil && out.Results[3].Response.Bound != 1 {
		t.Errorf("exact slot bound = %v, want 1", out.Results[3].Response.Bound)
	}
	if out.Results[2].Error == nil || out.Results[2].Error.Code != korapi.CodeUnknownKeyword {
		t.Errorf("failing slot = %+v, want unknown_keyword error", out.Results[2])
	}
	// A batch slot with a bad algorithm carries the same code /v1/route uses.
	if out.Results[4].Error == nil || out.Results[4].Error.Code != korapi.CodeUnknownAlgorithm {
		t.Errorf("bad-algorithm slot = %+v, want unknown_algorithm error", out.Results[4])
	}

	// Malformed bodies and empty batches are hard 400s.
	var env korapi.ErrorEnvelope
	resp = post(t, ts, "/v1/batch", korapi.BatchRequest{}, &env)
	wantEnvelope(t, resp, env, http.StatusBadRequest, korapi.CodeBadRequest)
}

func TestServeV1Nodes(t *testing.T) {
	ts := testServer(t, 5*time.Second)
	var node korapi.Node
	resp := get(t, ts, "/v1/nodes/1", &node)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if node.ID != 1 || len(node.Keywords) != 2 {
		t.Errorf("node = %+v, want id 1 with keywords {cafe, jazz}", node)
	}

	for _, path := range []string{"/v1/nodes/999", "/v1/nodes/abc"} {
		var env korapi.ErrorEnvelope
		resp := get(t, ts, path, &env)
		wantEnvelope(t, resp, env, http.StatusNotFound, korapi.CodeNotFound)
	}
}

func TestServeV1Keywords(t *testing.T) {
	ts := testServer(t, 5*time.Second)
	var out korapi.KeywordsResponse
	resp := get(t, ts, "/v1/keywords?prefix=ca&limit=10", &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if len(out.Keywords) != 1 || out.Keywords[0].Keyword != "cafe" || out.Keywords[0].Nodes != 2 {
		t.Errorf("keywords = %+v, want [{cafe 2}]", out.Keywords)
	}

	var env korapi.ErrorEnvelope
	resp = get(t, ts, "/v1/keywords?limit=lots", &env)
	wantEnvelope(t, resp, env, http.StatusBadRequest, korapi.CodeBadRequest)
}

func TestServeV1Stats(t *testing.T) {
	ts := testServer(t, 5*time.Second)
	var st korapi.Stats
	resp := get(t, ts, "/v1/stats", &st)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if st.Nodes != 4 || st.Edges != 7 {
		t.Errorf("stats = %+v, want 4 nodes / 7 edges", st)
	}
}

func TestServeGeoJSON(t *testing.T) {
	ts := testServer(t, 5*time.Second)
	resp, err := http.Get(ts.URL + "/v1/route?from=0&to=0&keywords=jazz,park&budget=4&format=geojson")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/geo+json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var fc struct {
		Type     string `json:"type"`
		Features []struct {
			Geometry struct {
				Type string `json:"type"`
			} `json:"geometry"`
		} `json:"features"`
	}
	if err := json.Unmarshal(body, &fc); err != nil {
		t.Fatalf("decoding geojson %q: %v", body, err)
	}
	if fc.Type != "FeatureCollection" || len(fc.Features) < 2 {
		t.Errorf("geojson = %s", body)
	}
	if fc.Features[0].Geometry.Type != "LineString" {
		t.Errorf("first feature geometry = %q, want LineString", fc.Features[0].Geometry.Type)
	}
}

// TestServeLegacyAliases: the pre-/v1 paths still answer (with the /v1
// bodies) and are flagged deprecated.
func TestServeLegacyAliases(t *testing.T) {
	ts := testServer(t, 5*time.Second)
	var out korapi.Response
	resp := get(t, ts, "/query?from=0&to=0&keywords=jazz,park&delta=4&algo=greedy", &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if resp.Header.Get("Deprecation") == "" {
		t.Error("legacy path not flagged with a Deprecation header")
	}
	if !strings.Contains(resp.Header.Get("Link"), "/v1/route") {
		t.Errorf("Link header = %q, want successor /v1/route", resp.Header.Get("Link"))
	}
	if out.Algorithm != "greedy" {
		t.Errorf("algorithm = %q, want greedy via legacy algo param", out.Algorithm)
	}

	// The satellite fix: a malformed k on the legacy path is now a 400, not
	// silently ignored.
	var env korapi.ErrorEnvelope
	respBad := get(t, ts, "/query?from=0&to=0&keywords=jazz&delta=4&k=abc", &env)
	wantEnvelope(t, respBad, env, http.StatusBadRequest, korapi.CodeBadRequest)

	var batchOut korapi.BatchResponse
	legacyBody := map[string]any{
		"queries": []map[string]any{
			{"from": 0, "to": 2, "keywords": []string{"cafe"}, "delta": 5},
		},
	}
	respBatch := post(t, ts, "/batch", legacyBody, &batchOut)
	if respBatch.StatusCode != http.StatusOK {
		t.Fatalf("legacy batch status = %d", respBatch.StatusCode)
	}
	if len(batchOut.Results) != 1 || batchOut.Results[0].Response == nil {
		t.Errorf("legacy batch results = %+v", batchOut.Results)
	}
}

// TestServeBudgetOvershootWarning: a greedy route that covers the keywords
// but overshoots Δ is a 200 carrying the violating routes (Feasible=false)
// plus an explicit budget_exceeded warning — not a bare success the client
// cannot distinguish from a feasible answer, and not an error envelope that
// discards the routes. Both the GET and batch paths are covered.
func TestServeBudgetOvershootWarning(t *testing.T) {
	ts := testServer(t, 5*time.Second)

	// Keyword mode greedy: the only jazz route 0→1→2 costs budget 2.0 > 1.
	var out korapi.Response
	resp := get(t, ts, "/v1/route?from=0&to=2&keywords=jazz&budget=1&algorithm=greedy", &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 with routes and warning", resp.StatusCode)
	}
	if len(out.Routes) == 0 {
		t.Fatal("overshoot routes were dropped")
	}
	if out.Routes[0].Feasible {
		t.Errorf("overshoot route flagged feasible: %+v", out.Routes[0])
	}
	if out.Warning == nil || out.Warning.Code != korapi.CodeBudgetExceeded {
		t.Fatalf("warning = %+v, want code %q", out.Warning, korapi.CodeBudgetExceeded)
	}
	if out.Warning.Message == "" {
		t.Error("warning carries no message")
	}

	// A feasible answer carries no warning.
	var ok korapi.Response
	get(t, ts, "/v1/route?from=0&to=2&keywords=jazz&budget=6&algorithm=greedy", &ok)
	if ok.Warning != nil {
		t.Errorf("feasible response carries warning %+v", ok.Warning)
	}

	// Batch path: the overshoot slot is a response with a warning, not an
	// inline error.
	batch := korapi.BatchRequest{Requests: []korapi.Request{
		{From: 0, To: 2, Keywords: []string{"jazz"}, Budget: 1, Algorithm: "greedy"},
		{From: 0, To: 2, Keywords: []string{"jazz"}, Budget: 6},
	}}
	var bout korapi.BatchResponse
	bresp := post(t, ts, "/v1/batch", batch, &bout)
	if bresp.StatusCode != http.StatusOK || len(bout.Results) != 2 {
		t.Fatalf("batch status=%d results=%+v", bresp.StatusCode, bout.Results)
	}
	slot := bout.Results[0]
	if slot.Error != nil {
		t.Fatalf("overshoot batch slot became error %+v, routes discarded", slot.Error)
	}
	if slot.Response == nil || len(slot.Response.Routes) == 0 {
		t.Fatalf("overshoot batch slot = %+v, want routes", slot)
	}
	if slot.Response.Warning == nil || slot.Response.Warning.Code != korapi.CodeBudgetExceeded {
		t.Fatalf("overshoot batch slot warning = %+v", slot.Response.Warning)
	}
	if bout.Results[1].Response == nil || bout.Results[1].Response.Warning != nil {
		t.Errorf("clean batch slot = %+v, want response without warning", bout.Results[1])
	}
}

// TestWriteErrorCanceled: a canceled search must write its 499 envelope.
// The old code returned without writing anything, which made net/http emit
// an implicit 200 OK with an empty body to any still-connected reader.
func TestWriteErrorCanceled(t *testing.T) {
	rec := httptest.NewRecorder()
	writeError(rec, &korapi.Error{Code: korapi.CodeCanceled, Message: "search canceled"})
	if rec.Code != 499 {
		t.Fatalf("status = %d, want 499 (implicit 200 masks the cancellation)", rec.Code)
	}
	var env korapi.ErrorEnvelope
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
		t.Fatalf("body %q is not an error envelope: %v", rec.Body.Bytes(), err)
	}
	if env.Error.Code != korapi.CodeCanceled {
		t.Errorf("envelope code = %q, want canceled", env.Error.Code)
	}
}

// TestServeV1StatsSnapshot: /v1/stats carries the serving snapshot's
// identity so operators can verify a patch or reload actually took.
func TestServeV1StatsSnapshot(t *testing.T) {
	ts := testServer(t, 5*time.Second)
	var st korapi.Stats
	get(t, ts, "/v1/stats", &st)
	if st.Snapshot == nil {
		t.Fatal("stats carry no snapshot block")
	}
	if len(st.Snapshot.Fingerprint) != 16 {
		t.Errorf("fingerprint = %q, want 16 hex digits", st.Snapshot.Fingerprint)
	}
	if st.Snapshot.Generation != 1 {
		t.Errorf("generation = %d, want 1 on a fresh server", st.Snapshot.Generation)
	}
	if _, err := time.Parse(time.RFC3339Nano, st.Snapshot.LoadedAt); err != nil {
		t.Errorf("loaded_at %q: %v", st.Snapshot.LoadedAt, err)
	}
}

// TestServeAdminPatch drives a live update end to end over HTTP: the delta
// changes the serving graph, the fingerprint and generation advance in
// /v1/stats, and route answers reflect the new attributes.
func TestServeAdminPatch(t *testing.T) {
	ts := testServer(t, 5*time.Second)

	var before korapi.Stats
	get(t, ts, "/v1/stats", &before)
	var routeBefore korapi.Response
	get(t, ts, "/v1/route?from=0&to=2&keywords=jazz&budget=6", &routeBefore)
	if got := routeBefore.Routes[0].Objective; got != 1.0 {
		t.Fatalf("pre-patch objective = %v, want 1.0", got)
	}

	delta := korapi.Delta{UpdateEdges: []korapi.DeltaEdge{{From: 0, To: 1, Objective: 0.1, Budget: 1.2}}}
	var admin korapi.AdminResponse
	resp := post(t, ts, "/v1/admin/patch", delta, &admin)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("patch status = %d", resp.StatusCode)
	}
	if admin.Snapshot.Generation != 2 {
		t.Errorf("generation = %d, want 2", admin.Snapshot.Generation)
	}
	if admin.Snapshot.Fingerprint == before.Snapshot.Fingerprint {
		t.Error("fingerprint unchanged by patch")
	}
	if admin.Nodes != 4 || admin.Edges != 7 {
		t.Errorf("admin size = %d/%d, want 4/7", admin.Nodes, admin.Edges)
	}

	var after korapi.Stats
	get(t, ts, "/v1/stats", &after)
	if after.Snapshot.Fingerprint != admin.Snapshot.Fingerprint || after.Snapshot.Generation != 2 {
		t.Errorf("stats snapshot = %+v, want the patched one %+v", after.Snapshot, admin.Snapshot)
	}
	var routeAfter korapi.Response
	get(t, ts, "/v1/route?from=0&to=2&keywords=jazz&budget=6", &routeAfter)
	if got := routeAfter.Routes[0].Objective; got != 0.4 {
		t.Errorf("post-patch objective = %v, want 0.4 (0.1 + 0.3)", got)
	}

	// Malformed deltas are hard 400s and leave the snapshot alone.
	cases := []struct {
		name string
		d    korapi.Delta
	}{
		{"empty", korapi.Delta{}},
		{"missing edge", korapi.Delta{RemoveEdges: []korapi.DeltaEdge{{From: 1, To: 0}}}},
		{"bad attribute", korapi.Delta{UpdateEdges: []korapi.DeltaEdge{{From: 0, To: 1, Objective: -1, Budget: 1}}}},
		{"unknown node", korapi.Delta{AddKeywords: []korapi.DeltaKeywords{{Node: 99, Keywords: []string{"x"}}}}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var env korapi.ErrorEnvelope
			resp := post(t, ts, "/v1/admin/patch", c.d, &env)
			wantEnvelope(t, resp, env, http.StatusBadRequest, korapi.CodeBadRequest)
		})
	}
	var final korapi.Stats
	get(t, ts, "/v1/stats", &final)
	if final.Snapshot.Generation != 2 {
		t.Errorf("failed patches moved the generation to %d", final.Snapshot.Generation)
	}
}

// TestServeAdminReload: reload re-reads the graph file, restoring the
// on-disk dataset after patches drifted the in-memory one.
func TestServeAdminReload(t *testing.T) {
	dir := t.TempDir()
	graphPath := filepath.Join(dir, "city.korg")
	if err := kor.SaveGraph(graphPath, testGraph(t)); err != nil {
		t.Fatal(err)
	}
	g, err := kor.LoadGraph(graphPath)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := kor.NewEngine(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newServer(eng, serverConfig{graphPath: graphPath, timeout: 5 * time.Second}).routes())
	t.Cleanup(ts.Close)

	var before korapi.Stats
	get(t, ts, "/v1/stats", &before)
	delta := korapi.Delta{UpdateEdges: []korapi.DeltaEdge{{From: 0, To: 1, Objective: 0.1, Budget: 1.2}}}
	post(t, ts, "/v1/admin/patch", delta, nil)

	var admin korapi.AdminResponse
	resp := post(t, ts, "/v1/admin/reload", nil, &admin)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload status = %d", resp.StatusCode)
	}
	if admin.Snapshot.Generation != 3 {
		t.Errorf("generation = %d, want 3 (boot, patch, reload)", admin.Snapshot.Generation)
	}
	if admin.Snapshot.Fingerprint != before.Snapshot.Fingerprint {
		t.Errorf("reload fingerprint = %s, want the on-disk %s", admin.Snapshot.Fingerprint, before.Snapshot.Fingerprint)
	}

	// A server without a graph file refuses to reload.
	noFile := testServer(t, 5*time.Second)
	var env korapi.ErrorEnvelope
	resp = post(t, noFile, "/v1/admin/reload", nil, &env)
	wantEnvelope(t, resp, env, http.StatusBadRequest, korapi.CodeBadRequest)
}

// TestServeConcurrentRoutes hammers one server from several goroutines as a
// sanity check that the shared-engine handlers stay race-free end to end.
func TestServeConcurrentRoutes(t *testing.T) {
	ts := testServer(t, 5*time.Second)
	done := make(chan error, 8)
	for w := 0; w < 8; w++ {
		go func() {
			resp, err := http.Get(ts.URL + "/v1/route?from=0&to=0&keywords=jazz,park&budget=4")
			if err != nil {
				done <- err
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				done <- fmt.Errorf("status %d", resp.StatusCode)
				return
			}
			done <- nil
		}()
	}
	for w := 0; w < 8; w++ {
		if err := <-done; err != nil {
			t.Error(err)
		}
	}
}

// TestServeStatsOracle covers the /v1/stats oracle block end to end: a
// server started with a persistent distance index reports partitioned-disk
// serving, and an admin patch that diverges the graph flips it to a
// degraded lazy oracle instead of serving stale distances.
func TestServeStatsOracle(t *testing.T) {
	g := testGraph(t)
	distPath := filepath.Join(t.TempDir(), "dist.kori")
	if _, err := kor.WriteDistIndex(distPath, g, 3); err != nil {
		t.Fatalf("WriteDistIndex: %v", err)
	}
	eng, err := kor.NewEngine(g, &kor.EngineConfig{DistIndexPath: distPath})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	t.Cleanup(func() { eng.Close() })
	ts := httptest.NewServer(newServer(eng, serverConfig{timeout: 5 * time.Second}).routes())
	t.Cleanup(ts.Close)

	var st korapi.Stats
	get(t, ts, "/v1/stats", &st)
	if st.Oracle == nil {
		t.Fatal("stats carry no oracle block")
	}
	if st.Oracle.Kind != "partitioned-disk" || st.Oracle.Degraded {
		t.Fatalf("oracle = %+v, want healthy partitioned-disk", st.Oracle)
	}
	if len(st.Oracle.IndexFingerprint) != 16 || st.Oracle.IndexBytes <= 0 {
		t.Errorf("oracle index identity = %+v", st.Oracle)
	}
	if st.Oracle.DegradedSince != "" {
		t.Errorf("healthy oracle carries degraded_since %q", st.Oracle.DegradedSince)
	}

	delta := korapi.Delta{UpdateEdges: []korapi.DeltaEdge{{From: 0, To: 1, Objective: 0.9, Budget: 1.2}}}
	if resp := post(t, ts, "/v1/admin/patch", delta, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("patch status = %d", resp.StatusCode)
	}
	get(t, ts, "/v1/stats", &st)
	if st.Oracle == nil || st.Oracle.Kind != "lazy" || !st.Oracle.Degraded {
		t.Fatalf("post-patch oracle = %+v, want degraded lazy", st.Oracle)
	}
	since, err := time.Parse(time.RFC3339Nano, st.Oracle.DegradedSince)
	if err != nil {
		t.Fatalf("degraded_since %q is not RFC 3339: %v", st.Oracle.DegradedSince, err)
	}
	if age := time.Since(since); age < 0 || age > time.Minute {
		t.Errorf("degraded_since %q dates the episode %v ago, want just now", st.Oracle.DegradedSince, age)
	}

	// A second patch extends the same episode: the timestamp must not move.
	if resp := post(t, ts, "/v1/admin/patch", korapi.Delta{UpdateEdges: []korapi.DeltaEdge{{From: 0, To: 1, Objective: 0.8, Budget: 1.2}}}, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("second patch status = %d", resp.StatusCode)
	}
	get(t, ts, "/v1/stats", &st)
	if got, _ := time.Parse(time.RFC3339Nano, st.Oracle.DegradedSince); !got.Equal(since) {
		t.Errorf("second patch moved degraded_since from %v to %v", since, got)
	}
}

// TestServeStatsOracleDefault: without a distance index the oracle block
// still names the serving implementation.
func TestServeStatsOracleDefault(t *testing.T) {
	ts := testServer(t, 5*time.Second)
	var st korapi.Stats
	get(t, ts, "/v1/stats", &st)
	if st.Oracle == nil || st.Oracle.Kind != "matrix" || st.Oracle.Degraded {
		t.Fatalf("oracle = %+v, want matrix", st.Oracle)
	}
}
