package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"kor"
	"kor/korapi"
)

// TestServeBinarySmoke builds the korserve binary, starts it on a saved
// graph, and drives the /v1 surface over real HTTP — the smoke job CI runs
// with `go test ./... -run TestServe`.
func TestServeBinarySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("binary smoke test in -short mode")
	}
	dir := t.TempDir()

	bin := filepath.Join(dir, "korserve")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building korserve: %v\n%s", err, out)
	}

	graphPath := filepath.Join(dir, "city.korg")
	if err := kor.SaveGraph(graphPath, testGraph(t)); err != nil {
		t.Fatal(err)
	}

	addr := freeAddr(t)
	srv := exec.Command(bin, "-graph", graphPath, "-addr", addr, "-timeout", "5s")
	srv.Stderr = io.Discard
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		srv.Process.Signal(syscall.SIGTERM)
		srv.Wait()
	}()

	base := "http://" + addr
	waitReady(t, base+"/v1/stats")

	var routeResp korapi.Response
	getInto(t, base+"/v1/route?from=0&to=0&keywords=jazz,park&budget=4", http.StatusOK, &routeResp)
	if len(routeResp.Routes) != 1 || !routeResp.Routes[0].Feasible {
		t.Errorf("binary /v1/route = %+v", routeResp)
	}

	var env korapi.ErrorEnvelope
	getInto(t, base+"/v1/route?from=0&to=2&keywords=spa&budget=5", http.StatusBadRequest, &env)
	if env.Error.Code != korapi.CodeUnknownKeyword {
		t.Errorf("binary error code = %q, want unknown_keyword", env.Error.Code)
	}

	var st korapi.Stats
	getInto(t, base+"/v1/stats", http.StatusOK, &st)
	if st.Nodes != 4 {
		t.Errorf("binary /v1/stats nodes = %d, want 4", st.Nodes)
	}
}

// TestServeBinaryAdminSmoke drives the live-update path through the real
// binaries, the way the CI smoke job does: kordata generates a graph AND a
// delta file, korserve starts on the graph, and the test patches it mid-run
// over HTTP — asserting the fingerprint in /v1/stats changes, queries keep
// answering, and a reload restores the on-disk dataset.
func TestServeBinaryAdminSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("binary smoke test in -short mode")
	}
	dir := t.TempDir()

	korserveBin := filepath.Join(dir, "korserve")
	if out, err := exec.Command("go", "build", "-o", korserveBin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building korserve: %v\n%s", err, out)
	}
	kordataBin := filepath.Join(dir, "kordata")
	if out, err := exec.Command("go", "build", "-o", kordataBin, "../kordata").CombinedOutput(); err != nil {
		t.Fatalf("building kordata: %v\n%s", err, out)
	}

	graphPath := filepath.Join(dir, "road.korg")
	deltaPath := filepath.Join(dir, "patch.json")
	gen := exec.Command(kordataBin, "-kind", "road", "-nodes", "80", "-seed", "7",
		"-out", graphPath, "-emit-delta", deltaPath)
	if out, err := gen.CombinedOutput(); err != nil {
		t.Fatalf("kordata: %v\n%s", err, out)
	}

	addr := freeAddr(t)
	srv := exec.Command(korserveBin, "-graph", graphPath, "-addr", addr, "-timeout", "5s")
	srv.Stderr = io.Discard
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		srv.Process.Signal(syscall.SIGTERM)
		srv.Wait()
	}()

	base := "http://" + addr
	waitReady(t, base+"/v1/stats")

	var before korapi.Stats
	getInto(t, base+"/v1/stats", http.StatusOK, &before)
	if before.Snapshot == nil || before.Snapshot.Generation != 1 {
		t.Fatalf("boot snapshot = %+v, want generation 1", before.Snapshot)
	}

	delta, err := os.ReadFile(deltaPath)
	if err != nil {
		t.Fatal(err)
	}
	var admin korapi.AdminResponse
	postInto(t, base+"/v1/admin/patch", delta, http.StatusOK, &admin)
	if admin.Snapshot.Generation != 2 {
		t.Errorf("patched generation = %d, want 2", admin.Snapshot.Generation)
	}
	if admin.Snapshot.Fingerprint == before.Snapshot.Fingerprint {
		t.Error("fingerprint did not change after the patch")
	}

	var after korapi.Stats
	getInto(t, base+"/v1/stats", http.StatusOK, &after)
	if after.Snapshot.Fingerprint != admin.Snapshot.Fingerprint {
		t.Errorf("stats fingerprint = %s, want patched %s", after.Snapshot.Fingerprint, admin.Snapshot.Fingerprint)
	}
	// The delta adds a marker keyword to node 0: the patched vocabulary is
	// live on the query path.
	var kws korapi.KeywordsResponse
	getInto(t, base+"/v1/keywords?prefix=kordata_patch_marker", http.StatusOK, &kws)
	if len(kws.Keywords) != 1 || kws.Keywords[0].Nodes != 1 {
		t.Errorf("patched keyword lookup = %+v", kws.Keywords)
	}

	// Reload restores the on-disk graph: fingerprint back to boot.
	var reloaded korapi.AdminResponse
	postInto(t, base+"/v1/admin/reload", nil, http.StatusOK, &reloaded)
	if reloaded.Snapshot.Generation != 3 {
		t.Errorf("reloaded generation = %d, want 3", reloaded.Snapshot.Generation)
	}
	if reloaded.Snapshot.Fingerprint != before.Snapshot.Fingerprint {
		t.Errorf("reloaded fingerprint = %s, want the on-disk %s", reloaded.Snapshot.Fingerprint, before.Snapshot.Fingerprint)
	}
}

func postInto(t *testing.T, url string, body []byte, wantStatus int, out any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	respBody, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantStatus {
		t.Fatalf("%s: status %d, want %d (body %s)", url, resp.StatusCode, wantStatus, respBody)
	}
	if err := json.Unmarshal(respBody, out); err != nil {
		t.Fatalf("decoding %s body %q: %v", url, respBody, err)
	}
}

func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

func waitReady(t *testing.T, url string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("korserve binary never became ready at %s", url)
}

func getInto(t *testing.T, url string, wantStatus int, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantStatus {
		t.Fatalf("%s: status %d, want %d (body %s)", url, resp.StatusCode, wantStatus, body)
	}
	if err := json.Unmarshal(body, out); err != nil {
		t.Fatalf("decoding %s body %q: %v", url, body, err)
	}
}
