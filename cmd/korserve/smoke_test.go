package main

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"kor"
	"kor/korapi"
)

// TestServeBinarySmoke builds the korserve binary, starts it on a saved
// graph, and drives the /v1 surface over real HTTP — the smoke job CI runs
// with `go test ./... -run TestServe`.
func TestServeBinarySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("binary smoke test in -short mode")
	}
	dir := t.TempDir()

	bin := filepath.Join(dir, "korserve")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building korserve: %v\n%s", err, out)
	}

	graphPath := filepath.Join(dir, "city.korg")
	if err := kor.SaveGraph(graphPath, testGraph(t)); err != nil {
		t.Fatal(err)
	}

	addr := freeAddr(t)
	srv := exec.Command(bin, "-graph", graphPath, "-addr", addr, "-timeout", "5s")
	srv.Stderr = io.Discard
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		srv.Process.Signal(syscall.SIGTERM)
		srv.Wait()
	}()

	base := "http://" + addr
	waitReady(t, base+"/v1/stats")

	var routeResp korapi.Response
	getInto(t, base+"/v1/route?from=0&to=0&keywords=jazz,park&budget=4", http.StatusOK, &routeResp)
	if len(routeResp.Routes) != 1 || !routeResp.Routes[0].Feasible {
		t.Errorf("binary /v1/route = %+v", routeResp)
	}

	var env korapi.ErrorEnvelope
	getInto(t, base+"/v1/route?from=0&to=2&keywords=spa&budget=5", http.StatusBadRequest, &env)
	if env.Error.Code != korapi.CodeUnknownKeyword {
		t.Errorf("binary error code = %q, want unknown_keyword", env.Error.Code)
	}

	var st korapi.Stats
	getInto(t, base+"/v1/stats", http.StatusOK, &st)
	if st.Nodes != 4 {
		t.Errorf("binary /v1/stats nodes = %d, want 4", st.Nodes)
	}
}

func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

func waitReady(t *testing.T, url string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("korserve binary never became ready at %s", url)
}

func getInto(t *testing.T, url string, wantStatus int, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantStatus {
		t.Fatalf("%s: status %d, want %d (body %s)", url, resp.StatusCode, wantStatus, body)
	}
	if err := json.Unmarshal(body, out); err != nil {
		t.Fatalf("decoding %s body %q: %v", url, body, err)
	}
}
