package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"kor"
	"kor/internal/metrics"
	"kor/korapi"
)

// limitedServer builds a server with admission control and a registry, and
// hands back the pieces tests poke at.
func limitedServer(t *testing.T, maxInFlight, maxQueue int, queueWait time.Duration) (*httptest.Server, *server, *metrics.Registry) {
	t.Helper()
	reg := metrics.NewRegistry()
	eng, err := kor.NewEngine(testGraph(t), &kor.EngineConfig{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	s := newServer(eng, serverConfig{
		timeout:     5 * time.Second,
		maxInFlight: maxInFlight,
		maxQueue:    maxQueue,
		queueWait:   queueWait,
		registry:    reg,
	})
	ts := httptest.NewServer(s.routes())
	t.Cleanup(ts.Close)
	return ts, s, reg
}

func TestLimiterAcquireRelease(t *testing.T) {
	l := newLimiter(2, 0, 10*time.Millisecond)
	ctx := context.Background()
	if err := l.acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if err := l.acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if got := l.inFlight(); got != 2 {
		t.Errorf("inFlight = %d, want 2", got)
	}
	// Full with no queue: immediate shed.
	if err := l.acquire(ctx); err != errSaturated {
		t.Fatalf("acquire on full limiter = %v, want errSaturated", err)
	}
	l.release()
	if err := l.acquire(ctx); err != nil {
		t.Fatalf("acquire after release = %v", err)
	}
}

// TestLimiterTryAcquireExtra: batch widening takes only free slots, never
// blocks, and releases them all.
func TestLimiterTryAcquireExtra(t *testing.T) {
	l := newLimiter(4, 0, time.Millisecond)
	if err := l.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	got := l.tryAcquireExtra(10)
	if got != 3 {
		t.Errorf("tryAcquireExtra(10) with 3 free = %d", got)
	}
	if l.inFlight() != 4 {
		t.Errorf("inFlight = %d, want 4", l.inFlight())
	}
	if extra := l.tryAcquireExtra(1); extra != 0 {
		t.Errorf("tryAcquireExtra on a full limiter = %d, want 0", extra)
	}
	l.releaseExtra(got)
	l.release()
	if l.inFlight() != 0 {
		t.Errorf("inFlight after release = %d, want 0", l.inFlight())
	}
}

func TestLimiterQueueTimeout(t *testing.T) {
	l := newLimiter(1, 1, 20*time.Millisecond)
	if err := l.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := l.acquire(context.Background()); err != errSaturated {
		t.Fatalf("queued acquire = %v, want errSaturated after the wait", err)
	}
	if waited := time.Since(start); waited < 15*time.Millisecond {
		t.Errorf("queued acquire shed after %s, want it to wait ~20ms first", waited)
	}
}

func TestLimiterQueueCancel(t *testing.T) {
	l := newLimiter(1, 1, time.Minute)
	if err := l.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- l.acquire(ctx) }()
	// Wait until the request is actually queued, then abandon it.
	waitFor(t, func() bool { return l.queued() == 1 })
	cancel()
	if err := <-done; err != context.Canceled {
		t.Fatalf("canceled queued acquire = %v, want context.Canceled", err)
	}
	if got := l.queued(); got != 0 {
		t.Errorf("queue depth after cancel = %d, want 0", got)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition never became true")
}

// TestServeSaturation drives more concurrent requests than the limit
// through the HTTP stack: one slot, one queue place, everything beyond that
// must come back as the 429 envelope with a Retry-After hint while the
// queue-depth gauge reports the waiter. When the slot frees, the queued
// request completes — saturation sheds load, it never corrupts it.
func TestServeSaturation(t *testing.T) {
	ts, s, _ := limitedServer(t, 1, 1, 10*time.Second)

	// Occupy the single slot so HTTP requests contend for the queue.
	if err := s.lim.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	released := false
	defer func() {
		if !released {
			s.lim.release()
		}
	}()

	// One request queues behind the occupied slot.
	queued := make(chan *http.Response, 1)
	go func() {
		resp, err := http.Get(ts.URL + "/v1/route?from=0&to=0&keywords=jazz,park&budget=4")
		if err != nil {
			t.Error(err)
			queued <- nil
			return
		}
		queued <- resp
	}()
	waitFor(t, func() bool { return s.lim.queued() == 1 })

	// The queue-depth gauge sees the waiter.
	var sb strings.Builder
	if err := s.reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "korserve_queue_depth 1\n") {
		t.Errorf("metrics do not report the queued request:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "korserve_inflight_requests 1\n") {
		t.Errorf("metrics do not report the in-flight slot:\n%s", sb.String())
	}

	// With slot and queue both full, the next request is shed immediately.
	resp, err := http.Get(ts.URL + "/v1/route?from=0&to=0&keywords=jazz,park&budget=4")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated status = %d, want 429 (body %s)", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 carries no Retry-After header")
	}
	var env korapi.ErrorEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("429 body %q is not an envelope: %v", body, err)
	}
	if env.Error.Code != korapi.CodeOverloaded {
		t.Errorf("429 code = %q, want %q", env.Error.Code, korapi.CodeOverloaded)
	}

	// Free the slot: the queued request must be admitted and answered.
	s.lim.release()
	released = true
	qresp := <-queued
	if qresp == nil {
		t.Fatal("queued request failed")
	}
	io.Copy(io.Discard, qresp.Body)
	qresp.Body.Close()
	if qresp.StatusCode != http.StatusOK {
		t.Errorf("queued request status = %d, want 200 once the slot freed", qresp.StatusCode)
	}

	// Admission counters saw all three outcomes paths: the shed request and
	// the admitted queued one.
	sb.Reset()
	if err := s.reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`korserve_admission_total{outcome="rejected"} 1`,
		`korserve_admission_total{outcome="admitted"} 1`,
	} {
		if !strings.Contains(sb.String(), want+"\n") {
			t.Errorf("metrics missing %q:\n%s", want, sb.String())
		}
	}
}

// TestServeOversaturationBurst fires a burst far over the limit and checks
// the invariant CI's oversaturation gate relies on: every response is
// either a success or a 429 envelope — the server sheds, it never errors or
// hangs.
func TestServeOversaturationBurst(t *testing.T) {
	ts, _, _ := limitedServer(t, 2, 2, 5*time.Millisecond)

	const n = 32
	var wg sync.WaitGroup
	codes := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/v1/route?from=0&to=0&keywords=jazz,park&budget=4")
			if err != nil {
				t.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			codes[i] = resp.StatusCode
		}(i)
	}
	wg.Wait()

	ok, shed := 0, 0
	for _, c := range codes {
		switch c {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			shed++
		default:
			t.Errorf("burst produced status %d, want only 200 or 429", c)
		}
	}
	if ok == 0 {
		t.Error("burst: no request succeeded")
	}
	t.Logf("burst: %d ok, %d shed", ok, shed)
}

// TestServeDrainOnShutdown: requests already admitted or queued when
// shutdown starts must complete before Shutdown returns — the limiter must
// not turn a graceful drain into dropped work.
func TestServeDrainOnShutdown(t *testing.T) {
	reg := metrics.NewRegistry()
	eng, err := kor.NewEngine(testGraph(t), &kor.EngineConfig{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	s := newServer(eng, serverConfig{
		timeout:     5 * time.Second,
		maxInFlight: 1,
		maxQueue:    4,
		queueWait:   10 * time.Second,
		registry:    reg,
	})
	srv := httptest.NewServer(s.routes())

	// Fill the slot so the in-flight requests below are parked in the queue
	// when shutdown begins.
	if err := s.lim.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}

	const n = 3
	results := make(chan int, n)
	for i := 0; i < n; i++ {
		go func() {
			resp, err := http.Get(srv.URL + "/v1/route?from=0&to=0&keywords=jazz,park&budget=4")
			if err != nil {
				results <- -1
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			results <- resp.StatusCode
		}()
	}
	waitFor(t, func() bool { return s.lim.queued() == n })

	// Begin the drain while they are still queued, then free the slot.
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.Config.SetKeepAlivesEnabled(false)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Config.Shutdown(ctx); err != nil {
			t.Errorf("shutdown did not drain cleanly: %v", err)
		}
	}()
	time.Sleep(20 * time.Millisecond) // let Shutdown observe the in-flight conns
	s.lim.release()

	for i := 0; i < n; i++ {
		if code := <-results; code != http.StatusOK {
			t.Errorf("draining request %d finished with %d, want 200", i, code)
		}
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Shutdown never returned")
	}
	srv.Close()
}

// TestServeMetricsEndpoint: GET /metrics renders the text exposition with
// both the engine's and the server's families after traffic has flowed.
func TestServeMetricsEndpoint(t *testing.T) {
	ts, _, _ := limitedServer(t, 8, 8, 100*time.Millisecond)

	for i := 0; i < 3; i++ {
		resp, err := http.Get(ts.URL + "/v1/route?from=0&to=0&keywords=jazz,park&budget=4")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	http.Get(ts.URL + "/v1/stats")

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics Content-Type = %q, want text/plain exposition", ct)
	}
	out := string(body)
	for _, want := range []string{
		`korserve_http_requests_total{endpoint="route",code="200"} 3`,
		`kor_engine_requests_total{algorithm="bucketbound",outcome="ok"} 3`,
		"korserve_inflight_requests 0",
		"korserve_queue_depth 0",
		"kor_engine_snapshot_generation 1",
		`# TYPE korserve_http_request_seconds histogram`,
		`korserve_http_request_seconds_count{endpoint="route"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("full exposition:\n%s", out)
	}
}

// TestServeNoMetricsRegistry: without a registry there is no /metrics
// endpoint and no instrumentation overhead.
func TestServeNoMetricsRegistry(t *testing.T) {
	ts := testServer(t, 5*time.Second)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("/metrics without a registry = %d, want 404", resp.StatusCode)
	}
}
