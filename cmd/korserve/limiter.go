package main

import (
	"context"
	"errors"
	"time"
)

// Admission control. A korserve query is NP-hard work: accepting every
// request under a burst means every request gets slower until the process
// dies of memory or the load balancer times everything out. The limiter
// bounds the damage with two numbers — how many searches may run at once,
// and how many more may wait in a short queue — and sheds the rest
// immediately with a 429 the client can back off on. Rejecting cheaply is
// the point: a shed request costs microseconds, an admitted one costs a
// search.

// errSaturated reports that the limiter could not admit the request: the
// in-flight limit is reached and the queue is full, or the queued wait
// timed out.
var errSaturated = errors.New("korserve: saturated: in-flight limit and queue are full")

// limiter is a two-stage admission gate: a semaphore bounding concurrent
// work plus a bounded, time-limited wait queue in front of it.
//
// Admission order among queued waiters is whatever the runtime's channel
// wakeup order is — fairness is not guaranteed, boundedness is.
type limiter struct {
	sem   chan struct{} // slot per admitted request
	queue chan struct{} // slot per waiting request
	wait  time.Duration // longest a request may queue
}

// newLimiter builds a limiter admitting maxInFlight concurrent requests
// with up to maxQueue waiters, each waiting at most wait. maxInFlight must
// be positive; maxQueue may be 0 (reject the moment the limit is reached).
func newLimiter(maxInFlight, maxQueue int, wait time.Duration) *limiter {
	if maxInFlight < 1 {
		maxInFlight = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &limiter{
		sem:   make(chan struct{}, maxInFlight),
		queue: make(chan struct{}, maxQueue),
		wait:  wait,
	}
}

// acquire admits the request or rejects it. It returns nil when a slot was
// taken (the caller must release), errSaturated when the queue is full or
// the wait expired, or the context's error when the client went away while
// queued.
func (l *limiter) acquire(ctx context.Context) error {
	// Fast path: a free slot, no queuing.
	select {
	case l.sem <- struct{}{}:
		return nil
	default:
	}
	// Slow path: take a queue slot or shed immediately.
	select {
	case l.queue <- struct{}{}:
	default:
		return errSaturated
	}
	defer func() { <-l.queue }()
	timer := time.NewTimer(l.wait)
	defer timer.Stop()
	select {
	case l.sem <- struct{}{}:
		return nil
	case <-timer.C:
		return errSaturated
	case <-ctx.Done():
		return ctx.Err()
	}
}

// release frees an admitted request's slot.
func (l *limiter) release() { <-l.sem }

// tryAcquireExtra grabs up to n additional slots without blocking and
// returns how many it got. A batch request fans out into a worker pool:
// counting it as one admission would let B concurrent batches run B×par
// searches, defeating the in-flight bound. Instead the batch keeps its one
// admitted slot (so it always makes progress) and widens its pool only by
// the slots that are actually free right now. Non-blocking acquisition is
// what makes this deadlock-free: no batch ever holds slots while waiting
// for more.
func (l *limiter) tryAcquireExtra(n int) int {
	got := 0
	for ; got < n; got++ {
		select {
		case l.sem <- struct{}{}:
		default:
			return got
		}
	}
	return got
}

// releaseExtra returns n slots taken by tryAcquireExtra.
func (l *limiter) releaseExtra(n int) {
	for i := 0; i < n; i++ {
		<-l.sem
	}
}

// inFlight reports how many admitted requests are currently running.
func (l *limiter) inFlight() int { return len(l.sem) }

// queued reports how many requests are currently waiting for admission.
func (l *limiter) queued() int { return len(l.queue) }

// retryAfterSeconds is the Retry-After hint sent with a 429: at least one
// second (the header is integer-valued), stretched to the queue wait when
// that is longer — if a request could not get a slot after waiting that
// long, retrying sooner is pointless.
func (l *limiter) retryAfterSeconds() int {
	s := int(l.wait / time.Second)
	if s < 1 {
		s = 1
	}
	return s
}
