// Command korserve exposes a KOR dataset over HTTP — the "map service"
// deployment the paper's introduction motivates.
//
// Usage:
//
//	korserve -graph city.korg [-addr :8080]
//
// Endpoints:
//
//	GET /query?from=12&to=80&keywords=cafe,jazz&delta=6[&algo=bucketbound][&k=3]
//	GET /node/12
//	GET /stats
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strconv"
	"strings"

	"kor"
)

type server struct {
	eng *kor.Engine
}

func main() {
	var (
		graphPath = flag.String("graph", "", "graph file written by kordata (required)")
		addr      = flag.String("addr", ":8080", "listen address")
	)
	flag.Parse()
	if *graphPath == "" {
		fmt.Fprintln(os.Stderr, "korserve: -graph is required")
		flag.Usage()
		os.Exit(2)
	}
	g, err := kor.LoadGraph(*graphPath)
	if err != nil {
		log.Fatalf("korserve: %v", err)
	}
	eng, err := kor.NewEngine(g, nil)
	if err != nil {
		log.Fatalf("korserve: %v", err)
	}
	s := &server{eng: eng}

	mux := http.NewServeMux()
	mux.HandleFunc("GET /query", s.handleQuery)
	mux.HandleFunc("GET /node/{id}", s.handleNode)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /keywords", s.handleKeywords)
	log.Printf("korserve: %d nodes, %d edges, listening on %s",
		g.NumNodes(), g.NumEdges(), *addr)
	log.Fatal(http.ListenAndServe(*addr, mux))
}

type routeJSON struct {
	Nodes     []kor.NodeID `json:"nodes"`
	Names     []string     `json:"names,omitempty"`
	Objective float64      `json:"objective"`
	Budget    float64      `json:"budget"`
	Feasible  bool         `json:"feasible"`
}

func (s *server) routeJSON(r kor.Route) routeJSON {
	out := routeJSON{Nodes: r.Nodes, Objective: r.Objective, Budget: r.Budget, Feasible: r.Feasible}
	g := s.eng.Graph()
	for _, v := range r.Nodes {
		if g.Name(v) != "" {
			out.Names = append(out.Names, g.Name(v))
		}
	}
	if len(out.Names) != len(out.Nodes) {
		out.Names = nil
	}
	return out
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	qv := r.URL.Query()
	from, err1 := strconv.Atoi(qv.Get("from"))
	to, err2 := strconv.Atoi(qv.Get("to"))
	delta, err3 := strconv.ParseFloat(qv.Get("delta"), 64)
	if err1 != nil || err2 != nil || err3 != nil || qv.Get("keywords") == "" {
		httpError(w, http.StatusBadRequest, "from, to, delta and keywords are required")
		return
	}
	var keywords []string
	for _, kw := range strings.Split(qv.Get("keywords"), ",") {
		if kw = strings.TrimSpace(kw); kw != "" {
			keywords = append(keywords, kw)
		}
	}
	opts := kor.DefaultOptions()
	if k := qv.Get("k"); k != "" {
		if kk, err := strconv.Atoi(k); err == nil {
			opts.K = kk
		}
	}
	q := kor.Query{From: kor.NodeID(from), To: kor.NodeID(to), Keywords: keywords, Budget: delta}

	var res kor.Result
	var err error
	switch algo := qv.Get("algo"); algo {
	case "", "bucketbound":
		res, err = s.eng.BucketBound(q, opts)
	case "osscaling":
		res, err = s.eng.OSScaling(q, opts)
	case "greedy":
		res, err = s.eng.Greedy(q, opts)
	default:
		httpError(w, http.StatusBadRequest, "unknown algo "+algo)
		return
	}
	switch {
	case errors.Is(err, kor.ErrNoRoute):
		httpError(w, http.StatusNotFound, "no feasible route")
		return
	case errors.Is(err, kor.ErrUnknownKeyword), errors.Is(err, kor.ErrBadQuery):
		httpError(w, http.StatusBadRequest, err.Error())
		return
	case err != nil && !errors.Is(err, kor.ErrBudgetExceeded):
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}

	routes := make([]routeJSON, len(res.Routes))
	for i, rt := range res.Routes {
		routes[i] = s.routeJSON(rt)
	}
	writeJSON(w, map[string]any{"routes": routes})
}

func (s *server) handleNode(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	g := s.eng.Graph()
	if err != nil || !g.Valid(kor.NodeID(id)) {
		httpError(w, http.StatusNotFound, "no such node")
		return
	}
	v := kor.NodeID(id)
	keywords := make([]string, 0, len(g.Terms(v)))
	for _, t := range g.Terms(v) {
		keywords = append(keywords, g.Vocab().Name(t))
	}
	writeJSON(w, map[string]any{
		"id":       v,
		"name":     g.Name(v),
		"keywords": keywords,
		"position": g.Position(v),
		"degree":   g.OutDegree(v),
	})
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.eng.Graph().ComputeStats())
}

// handleKeywords serves keyword autocomplete:
// GET /keywords?prefix=caf&limit=10
func (s *server) handleKeywords(w http.ResponseWriter, r *http.Request) {
	limit := 10
	if l := r.URL.Query().Get("limit"); l != "" {
		if n, err := strconv.Atoi(l); err == nil && n > 0 && n <= 200 {
			limit = n
		}
	}
	suggestions, err := s.eng.Suggest(r.URL.Query().Get("prefix"), limit)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, map[string]any{"keywords": suggestions})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("korserve: encoding response: %v", err)
	}
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
