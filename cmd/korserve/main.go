// Command korserve exposes a KOR dataset over HTTP — the "map service"
// deployment the paper's introduction motivates.
//
// Usage:
//
//	korserve -graph city.korg [-addr :8080] [-timeout 10s] [-cache 1024]
//	         [-max-inflight 0] [-queue 0] [-queue-wait 100ms]
//	         [-dist-index city.kori]
//
// -dist-index loads a persistent distance oracle built offline by
// kordata -build-index, skipping the τ/σ pre-processing at boot: the server
// mmaps the precomputed partition tables and serves from them immediately.
// The index is bound to the graph's fingerprint — starting with a
// non-matching file fails rather than serving wrong distances. If a later
// /v1/admin/patch or /v1/admin/reload changes the graph, the server logs the
// divergence and falls back to a lazy oracle (visible as degraded in
// /v1/stats and /metrics) instead of serving stale distances.
//
// Endpoints (see the korapi package for the wire types):
//
//	GET  /v1/route?from=12&to=80&keywords=cafe,jazz&budget=6
//	     [&algorithm=bucketbound|osscaling|greedy|topk|exact|bruteforce]
//	     [&k=3][&epsilon=0.5][&beta=1.2][&alpha=0.5][&width=2]
//	     [&metrics=true][&format=geojson]
//	POST /v1/route      korapi.Request
//	POST /v1/batch      korapi.BatchRequest (heterogeneous algorithms/options)
//	GET  /v1/nodes/{id}
//	GET  /v1/keywords?prefix=caf&limit=10
//	GET  /v1/stats
//	GET  /metrics          Prometheus text exposition
//	POST /v1/admin/patch   korapi.Delta — apply a live graph update
//	POST /v1/admin/reload  re-read the -graph file and swap it in
//
// Every error is the korapi envelope {"error":{"code":...,"message":...}}
// with a machine-readable code. The pre-/v1 paths (/query, /batch, /node,
// /keywords, /stats) remain as deprecated aliases of the same handlers.
//
// One Engine serves every request: the engine is safe for concurrent use,
// so handlers run in parallel with no per-request rebuild and no global
// query lock. Each request gets a deadline (-timeout) through its context,
// and SIGINT/SIGTERM drains in-flight requests before exiting. The admin
// endpoints swap the serving graph atomically: in-flight queries finish on
// the snapshot they started with. They are unauthenticated — keep them
// behind your deployment's access controls.
//
// Admission control: at most -max-inflight query requests (route + batch)
// run concurrently; up to -queue more wait at most -queue-wait for a slot,
// and everything beyond that is shed immediately with a 429 "overloaded"
// envelope and a Retry-After header. Searches are NP-hard — bounding
// concurrency keeps latency flat and memory bounded under bursts, and a
// shed request costs the server microseconds instead of a search. Cheap
// endpoints (stats, nodes, keywords, metrics, admin) bypass the gate so
// operators can observe a saturated server.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"kor"
	"kor/internal/metrics"
)

func main() {
	var (
		graphPath   = flag.String("graph", "", "graph file written by kordata (required)")
		addr        = flag.String("addr", ":8080", "listen address")
		timeout     = flag.Duration("timeout", 10*time.Second, "per-request search deadline (0 disables)")
		batchPar    = flag.Int("batch-parallelism", 0, "worker pool size for /v1/batch (0 = GOMAXPROCS)")
		cacheSize   = flag.Int("cache", 1024, "result cache capacity in responses (0 disables)")
		maxInFlight = flag.Int("max-inflight", 0, "max concurrent query requests (0 = 4×GOMAXPROCS, negative disables admission control)")
		maxQueue    = flag.Int("queue", -1, "max requests waiting for admission (-1 = 2×max-inflight, 0 = shed immediately at the limit)")
		queueWait   = flag.Duration("queue-wait", 100*time.Millisecond, "longest a request may wait for admission before a 429")
		drain       = flag.Duration("drain", 15*time.Second, "shutdown grace period for in-flight requests")
		distIndex   = flag.String("dist-index", "", "persistent distance index built by kordata -build-index (must match -graph)")
		role        = flag.String("role", "", "serving role reported in /v1/stats: \"\" (standalone) or \"replica\" behind a korrouter")
		shardID     = flag.String("shard-id", "", "shard this replica serves, as named by kordata -shard (reported in /v1/stats)")
	)
	flag.Parse()
	if *graphPath == "" {
		fmt.Fprintln(os.Stderr, "korserve: -graph is required")
		flag.Usage()
		os.Exit(2)
	}
	inFlight := *maxInFlight
	if inFlight == 0 {
		inFlight = 4 * runtime.GOMAXPROCS(0)
	}
	queue := *maxQueue
	if queue < 0 {
		queue = 2 * inFlight
	}
	g, err := kor.LoadGraph(*graphPath)
	if err != nil {
		log.Fatalf("korserve: %v", err)
	}
	reg := metrics.NewRegistry()
	eng, err := kor.NewEngine(g, &kor.EngineConfig{
		CacheSize:     *cacheSize,
		Metrics:       reg,
		DistIndexPath: *distIndex,
	})
	if err != nil {
		log.Fatalf("korserve: %v", err)
	}
	if *distIndex != "" {
		ost := eng.OracleStatus()
		log.Printf("korserve: distance index %s: fingerprint %016x, %d bytes, mapped=%v, loaded in %v",
			*distIndex, ost.IndexFingerprint, ost.IndexBytes, ost.Mapped, ost.LoadTime.Round(time.Microsecond))
	}
	if *role != "" && *role != "replica" {
		fmt.Fprintf(os.Stderr, "korserve: unknown -role %q (want \"\" or \"replica\")\n", *role)
		os.Exit(2)
	}
	s := newServer(eng, serverConfig{
		graphPath:   *graphPath,
		timeout:     *timeout,
		maxPar:      *batchPar,
		maxInFlight: inFlight,
		maxQueue:    queue,
		queueWait:   *queueWait,
		role:        *role,
		shardID:     *shardID,
		registry:    reg,
	})
	if *role != "" {
		log.Printf("korserve: serving as %s for shard %q", *role, *shardID)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           s.routes(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		if s.lim != nil {
			log.Printf("korserve: %d nodes, %d edges, listening on %s (max-inflight %d, queue %d, queue-wait %s)",
				g.NumNodes(), g.NumEdges(), *addr, inFlight, queue, *queueWait)
		} else {
			log.Printf("korserve: %d nodes, %d edges, listening on %s (admission control disabled)",
				g.NumNodes(), g.NumEdges(), *addr)
		}
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		log.Fatalf("korserve: %v", err)
	case <-ctx.Done():
	}
	// Graceful drain: stop accepting, let admitted and queued requests
	// finish within the grace period, then exit. Requests still running when
	// the period lapses are abandoned by Shutdown returning.
	log.Print("korserve: shutting down, draining in-flight requests")
	shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		log.Printf("korserve: shutdown: %v", err)
	}
}
