// Command korserve exposes a KOR dataset over HTTP — the "map service"
// deployment the paper's introduction motivates.
//
// Usage:
//
//	korserve -graph city.korg [-addr :8080] [-timeout 10s] [-cache 1024]
//
// Endpoints (see the korapi package for the wire types):
//
//	GET  /v1/route?from=12&to=80&keywords=cafe,jazz&budget=6
//	     [&algorithm=bucketbound|osscaling|greedy|topk|exact|bruteforce]
//	     [&k=3][&epsilon=0.5][&beta=1.2][&alpha=0.5][&width=2]
//	     [&metrics=true][&format=geojson]
//	POST /v1/route      korapi.Request
//	POST /v1/batch      korapi.BatchRequest (heterogeneous algorithms/options)
//	GET  /v1/nodes/{id}
//	GET  /v1/keywords?prefix=caf&limit=10
//	GET  /v1/stats
//	POST /v1/admin/patch   korapi.Delta — apply a live graph update
//	POST /v1/admin/reload  re-read the -graph file and swap it in
//
// Every error is the korapi envelope {"error":{"code":...,"message":...}}
// with a machine-readable code. The pre-/v1 paths (/query, /batch, /node,
// /keywords, /stats) remain as deprecated aliases of the same handlers.
//
// One Engine serves every request: the engine is safe for concurrent use,
// so handlers run in parallel with no per-request rebuild and no global
// query lock. Each request gets a deadline (-timeout) through its context,
// and SIGINT/SIGTERM drains in-flight requests before exiting. The admin
// endpoints swap the serving graph atomically: in-flight queries finish on
// the snapshot they started with. They are unauthenticated — keep them
// behind your deployment's access controls.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"kor"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "graph file written by kordata (required)")
		addr      = flag.String("addr", ":8080", "listen address")
		timeout   = flag.Duration("timeout", 10*time.Second, "per-request search deadline (0 disables)")
		batchPar  = flag.Int("batch-parallelism", 0, "worker pool size for /v1/batch (0 = GOMAXPROCS)")
		cacheSize = flag.Int("cache", 1024, "result cache capacity in responses (0 disables)")
	)
	flag.Parse()
	if *graphPath == "" {
		fmt.Fprintln(os.Stderr, "korserve: -graph is required")
		flag.Usage()
		os.Exit(2)
	}
	g, err := kor.LoadGraph(*graphPath)
	if err != nil {
		log.Fatalf("korserve: %v", err)
	}
	eng, err := kor.NewEngine(g, &kor.EngineConfig{CacheSize: *cacheSize})
	if err != nil {
		log.Fatalf("korserve: %v", err)
	}
	s := newServer(eng, *graphPath, *timeout, *batchPar)

	srv := &http.Server{
		Addr:              *addr,
		Handler:           s.routes(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("korserve: %d nodes, %d edges, listening on %s",
			g.NumNodes(), g.NumEdges(), *addr)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		log.Fatalf("korserve: %v", err)
	case <-ctx.Done():
	}
	log.Print("korserve: shutting down, draining in-flight requests")
	shutCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		log.Printf("korserve: shutdown: %v", err)
	}
}
