// Command korserve exposes a KOR dataset over HTTP — the "map service"
// deployment the paper's introduction motivates.
//
// Usage:
//
//	korserve -graph city.korg [-addr :8080] [-timeout 10s]
//
// Endpoints:
//
//	GET  /query?from=12&to=80&keywords=cafe,jazz&delta=6[&algo=bucketbound][&k=3]
//	POST /batch      {"queries": [{"from":12,"to":80,"keywords":["cafe"],"delta":6}, ...]}
//	GET  /node/12
//	GET  /keywords?prefix=caf&limit=10
//	GET  /stats
//
// One Engine serves every request: the engine is safe for concurrent use,
// so handlers run in parallel with no per-request rebuild and no global
// query lock. Each request gets a deadline (-timeout) through its context,
// and SIGINT/SIGTERM drains in-flight requests before exiting.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"kor"
)

type server struct {
	eng     *kor.Engine
	timeout time.Duration // per-request search deadline, 0 = none
	maxPar  int           // worker-pool cap for /batch
}

func main() {
	var (
		graphPath = flag.String("graph", "", "graph file written by kordata (required)")
		addr      = flag.String("addr", ":8080", "listen address")
		timeout   = flag.Duration("timeout", 10*time.Second, "per-request search deadline (0 disables)")
		batchPar  = flag.Int("batch-parallelism", 0, "worker pool size for /batch (0 = GOMAXPROCS)")
	)
	flag.Parse()
	if *graphPath == "" {
		fmt.Fprintln(os.Stderr, "korserve: -graph is required")
		flag.Usage()
		os.Exit(2)
	}
	g, err := kor.LoadGraph(*graphPath)
	if err != nil {
		log.Fatalf("korserve: %v", err)
	}
	eng, err := kor.NewEngine(g, nil)
	if err != nil {
		log.Fatalf("korserve: %v", err)
	}
	s := &server{eng: eng, timeout: *timeout, maxPar: *batchPar}

	mux := http.NewServeMux()
	mux.HandleFunc("GET /query", s.handleQuery)
	mux.HandleFunc("POST /batch", s.handleBatch)
	mux.HandleFunc("GET /node/{id}", s.handleNode)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /keywords", s.handleKeywords)

	srv := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("korserve: %d nodes, %d edges, listening on %s",
			g.NumNodes(), g.NumEdges(), *addr)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		log.Fatalf("korserve: %v", err)
	case <-ctx.Done():
	}
	log.Print("korserve: shutting down, draining in-flight requests")
	shutCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		log.Printf("korserve: shutdown: %v", err)
	}
}

// queryCtx derives the search context for one request: the client's
// context (so a dropped connection aborts the search) plus the configured
// deadline.
func (s *server) queryCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if s.timeout <= 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), s.timeout)
}

type routeJSON struct {
	Nodes     []kor.NodeID `json:"nodes"`
	Names     []string     `json:"names,omitempty"`
	Objective float64      `json:"objective"`
	Budget    float64      `json:"budget"`
	Feasible  bool         `json:"feasible"`
}

func (s *server) routeJSON(r kor.Route) routeJSON {
	out := routeJSON{Nodes: r.Nodes, Objective: r.Objective, Budget: r.Budget, Feasible: r.Feasible}
	g := s.eng.Graph()
	for _, v := range r.Nodes {
		if g.Name(v) != "" {
			out.Names = append(out.Names, g.Name(v))
		}
	}
	if len(out.Names) != len(out.Nodes) {
		out.Names = nil
	}
	return out
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	qv := r.URL.Query()
	from, err1 := strconv.Atoi(qv.Get("from"))
	to, err2 := strconv.Atoi(qv.Get("to"))
	delta, err3 := strconv.ParseFloat(qv.Get("delta"), 64)
	if err1 != nil || err2 != nil || err3 != nil || qv.Get("keywords") == "" {
		httpError(w, http.StatusBadRequest, "from, to, delta and keywords are required")
		return
	}
	var keywords []string
	for _, kw := range strings.Split(qv.Get("keywords"), ",") {
		if kw = strings.TrimSpace(kw); kw != "" {
			keywords = append(keywords, kw)
		}
	}
	opts := kor.DefaultOptions()
	if k := qv.Get("k"); k != "" {
		if kk, err := strconv.Atoi(k); err == nil {
			opts.K = kk
		}
	}
	q := kor.Query{From: kor.NodeID(from), To: kor.NodeID(to), Keywords: keywords, Budget: delta}

	ctx, cancel := s.queryCtx(r)
	defer cancel()

	var res kor.Result
	var err error
	switch algo := qv.Get("algo"); algo {
	case "", "bucketbound":
		res, err = s.eng.BucketBoundCtx(ctx, q, opts)
	case "osscaling":
		res, err = s.eng.OSScalingCtx(ctx, q, opts)
	case "greedy":
		res, err = s.eng.GreedyCtx(ctx, q, opts)
	default:
		httpError(w, http.StatusBadRequest, "unknown algo "+algo)
		return
	}
	if !s.writeSearchError(w, err) {
		return
	}

	routes := make([]routeJSON, len(res.Routes))
	for i, rt := range res.Routes {
		routes[i] = s.routeJSON(rt)
	}
	writeJSON(w, map[string]any{"routes": routes})
}

// writeSearchError maps a search error onto an HTTP response. It reports
// whether the handler should proceed to write the result.
func (s *server) writeSearchError(w http.ResponseWriter, err error) bool {
	switch {
	case err == nil, errors.Is(err, kor.ErrBudgetExceeded):
		return true
	case errors.Is(err, context.DeadlineExceeded):
		httpError(w, http.StatusGatewayTimeout, "search deadline exceeded")
	case errors.Is(err, context.Canceled):
		// Client went away; nothing useful to write.
	case errors.Is(err, kor.ErrNoRoute):
		httpError(w, http.StatusNotFound, "no feasible route")
	case errors.Is(err, kor.ErrUnknownKeyword), errors.Is(err, kor.ErrBadQuery):
		httpError(w, http.StatusBadRequest, err.Error())
	default:
		httpError(w, http.StatusInternalServerError, err.Error())
	}
	return false
}

type batchQueryJSON struct {
	From     kor.NodeID `json:"from"`
	To       kor.NodeID `json:"to"`
	Keywords []string   `json:"keywords"`
	Delta    float64    `json:"delta"`
}

type batchResultJSON struct {
	Route *routeJSON `json:"route,omitempty"`
	Error string     `json:"error,omitempty"`
}

// handleBatch answers many queries in one request via the engine's worker
// pool. Per-query failures (no route, bad keyword) come back inline so one
// infeasible query does not fail the batch.
func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Queries     []batchQueryJSON `json:"queries"`
		Parallelism int              `json:"parallelism"`
	}
	// Bound the body before decoding: the 1024-query limit below cannot
	// protect memory if the decoder has already swallowed the payload.
	body := http.MaxBytesReader(w, r.Body, 1<<20)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad batch body: "+err.Error())
		return
	}
	if len(req.Queries) == 0 || len(req.Queries) > 1024 {
		httpError(w, http.StatusBadRequest, "batch must contain 1..1024 queries")
		return
	}
	// Bound the client-requested parallelism: the configured cap, or
	// GOMAXPROCS when none was set — never let a request pick its own
	// unbounded worker count.
	maxPar := s.maxPar
	if maxPar <= 0 {
		maxPar = runtime.GOMAXPROCS(0)
	}
	par := req.Parallelism
	if par < 1 || par > maxPar {
		par = maxPar
	}
	queries := make([]kor.Query, len(req.Queries))
	for i, q := range req.Queries {
		queries[i] = kor.Query{From: q.From, To: q.To, Keywords: q.Keywords, Budget: q.Delta}
	}

	ctx, cancel := s.queryCtx(r)
	defer cancel()
	// A deadline firing mid-batch must not discard the queries that did
	// finish: SearchBatch fills every slot either way, so always return the
	// per-query results — entries cut short carry their ctx error inline —
	// and flag the batch as incomplete.
	results, batchErr := s.eng.SearchBatch(ctx, queries, kor.DefaultOptions(), par)

	out := make([]batchResultJSON, len(results))
	for i, br := range results {
		if br.Err != nil {
			out[i] = batchResultJSON{Error: br.Err.Error()}
			continue
		}
		rj := s.routeJSON(br.Route)
		out[i] = batchResultJSON{Route: &rj}
	}
	resp := map[string]any{"results": out}
	if batchErr != nil {
		resp["incomplete"] = true
	}
	writeJSON(w, resp)
}

func (s *server) handleNode(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	g := s.eng.Graph()
	if err != nil || !g.Valid(kor.NodeID(id)) {
		httpError(w, http.StatusNotFound, "no such node")
		return
	}
	v := kor.NodeID(id)
	keywords := make([]string, 0, len(g.Terms(v)))
	for _, t := range g.Terms(v) {
		keywords = append(keywords, g.Vocab().Name(t))
	}
	writeJSON(w, map[string]any{
		"id":       v,
		"name":     g.Name(v),
		"keywords": keywords,
		"position": g.Position(v),
		"degree":   g.OutDegree(v),
	})
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.eng.Graph().ComputeStats())
}

// handleKeywords serves keyword autocomplete:
// GET /keywords?prefix=caf&limit=10
func (s *server) handleKeywords(w http.ResponseWriter, r *http.Request) {
	limit := 10
	if l := r.URL.Query().Get("limit"); l != "" {
		if n, err := strconv.Atoi(l); err == nil && n > 0 && n <= 200 {
			limit = n
		}
	}
	suggestions, err := s.eng.Suggest(r.URL.Query().Get("prefix"), limit)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, map[string]any{"keywords": suggestions})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("korserve: encoding response: %v", err)
	}
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
