//go:build linux

package main

import (
	"os"
	"strconv"
	"strings"
)

// peakRSSBytes reads the process high-water resident set size from
// /proc/self/status (VmHWM) — the same number the CI scale tier gates the
// server on.
func peakRSSBytes() (int64, bool) {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0, false
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0, false
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0, false
		}
		return kb << 10, true
	}
	return 0, false
}
