//go:build !linux

package main

// peakRSSBytes is unavailable off Linux; the -stats report omits the line.
func peakRSSBytes() (int64, bool) { return 0, false }
