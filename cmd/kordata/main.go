// Command kordata generates the reproduction datasets and writes them to
// disk in the binary graph format, optionally with the disk-resident
// inverted file alongside.
//
// Usage:
//
//	kordata -kind flickr -seed 2012 -out city.korg [-index city.kbpt]
//	kordata -kind road -nodes 5000 -seed 2012 -out road5k.korg
package main

import (
	"flag"
	"fmt"
	"os"

	"kor"
	"kor/internal/gen"
	"kor/internal/textindex"
)

func main() {
	var (
		kind  = flag.String("kind", "flickr", "dataset kind: flickr | road")
		nodes = flag.Int("nodes", 5000, "node count for -kind road")
		seed  = flag.Int64("seed", 2012, "generator seed")
		out   = flag.String("out", "", "output graph file (required)")
		index = flag.String("index", "", "optional output path for the disk inverted file")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "kordata: -out is required")
		flag.Usage()
		os.Exit(2)
	}

	var g *kor.Graph
	switch *kind {
	case "flickr":
		world, st, err := gen.FlickrGraph(gen.FlickrConfig{Seed: *seed})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("pipeline: %v\n", st)
		g = world
	case "road":
		g = kor.SyntheticRoadNetwork(*seed, *nodes)
	default:
		fatal(fmt.Errorf("unknown -kind %q (flickr or road)", *kind))
	}
	fmt.Printf("graph: %v\n", g.ComputeStats())

	if err := kor.SaveGraph(*out, g); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)

	if *index != "" {
		if _, err := os.Stat(*index); err == nil {
			fatal(fmt.Errorf("index file %s already exists", *index))
		}
		gi, err := textindex.BuildForGraph(*index, g)
		if err != nil {
			fatal(err)
		}
		if err := gi.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *index)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kordata:", err)
	os.Exit(1)
}
