// Command kordata generates the reproduction datasets and writes them to
// disk in the binary graph format, optionally with the disk-resident
// inverted file alongside and a JSON delta file for exercising the live
// update path.
//
// Usage:
//
//	kordata -kind flickr -seed 2012 -out city.korg [-index city.kbpt]
//	kordata -kind road -nodes 5000 -seed 2012 -out road5k.korg
//	kordata -kind road -nodes 200 -out g.korg -emit-delta patch.json
//	kordata -kind road -nodes 5000 -out road5k.korg -build-index road5k.kori
//	kordata -kind road -nodes 1000 -out city.korg -shard 2 -halo 3
//
// -shard N cuts the graph into N region shards for the korrouter serving
// tier: city.shard0.korg … city.shard<N-1>.korg plus city.shardmap.json.
// Each shard graph keeps the full node set and vocabulary (global node IDs
// and Term numbering stay valid everywhere) but only the shard's closure —
// its owned partition regions plus a -halo hop border band — keeps edges
// and keywords. Boot one korserve per shard file (-role replica -shard-id
// <i>) and point korrouter at the shard map.
//
// -build-index runs the partitioned τ/σ pre-processing offline and persists
// it, so korserve -dist-index starts serving precomputed distances without
// paying the build at boot. The file is bound to the graph's fingerprint
// (printed here); korserve refuses it against any other graph.
//
// -emit-delta writes a korapi.Delta valid against the generated graph —
// attribute drift on an edge, a new keyword, a new edge — ready to POST to
// korserve's /v1/admin/patch. The delta is validated by applying it locally
// before writing, and the pre/post fingerprints are printed so a smoke test
// can assert the patch took effect.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"kor"
	"kor/internal/cluster"
	"kor/internal/gen"
	"kor/internal/textindex"
	"kor/korapi"
)

func main() {
	var (
		kind      = flag.String("kind", "flickr", "dataset kind: flickr | road")
		nodes     = flag.Int("nodes", 5000, "node count for -kind road")
		seed      = flag.Int64("seed", 2012, "generator seed")
		out       = flag.String("out", "", "output graph file (required)")
		index     = flag.String("index", "", "optional output path for the disk inverted file")
		emitDelta = flag.String("emit-delta", "", "optional output path for a JSON live-update delta valid for the generated graph")
		distIndex = flag.String("build-index", "", "optional output path for the persistent distance index (partitioned τ/σ tables)")
		cellSize  = flag.Int("cell-size", 0, "partition region-size cap for -build-index and -shard (0 = default)")
		shards    = flag.Int("shard", 0, "cut the graph into N region shards, writing <out-base>.shard<i>.korg plus <out-base>.shardmap.json for korrouter")
		halo      = flag.Int("halo", 2, "border halo depth for -shard: undirected BFS hops replicated beyond each shard's owned nodes")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "kordata: -out is required")
		flag.Usage()
		os.Exit(2)
	}

	var g *kor.Graph
	switch *kind {
	case "flickr":
		world, st, err := gen.FlickrGraph(gen.FlickrConfig{Seed: *seed})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("pipeline: %v\n", st)
		g = world
	case "road":
		g = kor.SyntheticRoadNetwork(*seed, *nodes)
	default:
		fatal(fmt.Errorf("unknown -kind %q (flickr or road)", *kind))
	}
	fmt.Printf("graph: %v\n", g.ComputeStats())

	if err := kor.SaveGraph(*out, g); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)

	if *index != "" {
		if _, err := os.Stat(*index); err == nil {
			fatal(fmt.Errorf("index file %s already exists", *index))
		}
		gi, err := textindex.BuildForGraph(*index, g)
		if err != nil {
			fatal(err)
		}
		if err := gi.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *index)
	}

	if *distIndex != "" {
		start := time.Now()
		info, err := kor.WriteDistIndex(*distIndex, g, *cellSize)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (fingerprint %016x, %d regions, %d borders, %s, built in %v)\n",
			*distIndex, info.Fingerprint, info.Regions, info.Borders,
			formatBytes(info.Bytes), time.Since(start).Round(time.Millisecond))
	}

	if *emitDelta != "" {
		if err := writeDelta(*emitDelta, g); err != nil {
			fatal(err)
		}
	}

	if *shards > 0 {
		if err := writeShards(*out, g, *shards, *cellSize, *halo); err != nil {
			fatal(err)
		}
	}
}

// writeShards cuts g into region shards and writes one graph file per shard
// plus the shard map korrouter boots from. File names derive from the main
// output path: city.korg → city.shard0.korg … plus city.shardmap.json.
func writeShards(outPath string, g *kor.Graph, shards, cellSize, halo int) error {
	cut, err := cluster.CutGraph(g, cluster.CutConfig{Shards: shards, CellSize: cellSize, Halo: halo})
	if err != nil {
		return err
	}
	base := strings.TrimSuffix(outPath, filepath.Ext(outPath))
	for i, sg := range cut.Graphs {
		name := fmt.Sprintf("%s.shard%d.korg", base, i)
		if err := kor.SaveGraph(name, sg); err != nil {
			return err
		}
		cut.Map.Shards[i].Graph = filepath.Base(name)
		info := cut.Map.Shards[i]
		fmt.Printf("wrote %s (shard %d: %d owned, %d closure, %d edges, %d keywords, fingerprint %s)\n",
			name, i, info.Owned, info.Closure, info.Edges, len(info.Keywords), info.Fingerprint)
	}
	mapPath := base + ".shardmap.json"
	if err := cut.Map.Save(mapPath); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d shards, halo %d, full fingerprint %s)\n",
		mapPath, len(cut.Map.Shards), cut.Map.Halo, cut.Map.FullFingerprint)
	return nil
}

// formatBytes renders a byte count with a binary unit suffix.
func formatBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%d B", n)
}

// writeDelta emits a small deterministic delta that is valid for g: the
// first edge's objective drifts by 10%, node 0 gains a keyword new to the
// vocabulary, and the first absent node pair gains an edge. The delta is
// applied locally before writing — an emitted file that korserve would
// reject is a bug here, not there.
func writeDelta(path string, g *kor.Graph) error {
	var d korapi.Delta
	for v := kor.NodeID(0); int(v) < g.NumNodes(); v++ {
		if out := g.Out(v); len(out) > 0 {
			d.UpdateEdges = append(d.UpdateEdges, korapi.DeltaEdge{
				From: int64(v), To: int64(out[0].To),
				Objective: out[0].Objective * 1.1,
				Budget:    out[0].Budget,
			})
			break
		}
	}
	d.AddKeywords = append(d.AddKeywords, korapi.DeltaKeywords{
		Node: 0, Keywords: []string{"kordata_patch_marker"},
	})
addEdge:
	for from := kor.NodeID(0); int(from) < g.NumNodes(); from++ {
		for to := kor.NodeID(g.NumNodes() - 1); to > from; to-- {
			present := false
			for _, e := range g.Out(from) {
				if e.To == to {
					present = true
					break
				}
			}
			if !present {
				d.AddEdges = append(d.AddEdges, korapi.DeltaEdge{
					From: int64(from), To: int64(to),
					Objective: g.MaxObjective(), Budget: g.MaxBudget(),
				})
				break addEdge
			}
		}
	}

	kd, err := d.KorDelta()
	if err != nil {
		return err
	}
	patched, err := g.Apply(kd)
	if err != nil {
		return fmt.Errorf("emitted delta does not apply: %w", err)
	}
	buf, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (fingerprint %016x → %016x)\n", path, g.Fingerprint(), patched.Fingerprint())
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kordata:", err)
	os.Exit(1)
}
