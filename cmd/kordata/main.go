// Command kordata generates the reproduction datasets and writes them to
// disk in the binary graph format, optionally with the disk-resident
// inverted file alongside and a JSON delta file for exercising the live
// update path.
//
// Usage:
//
//	kordata -kind flickr -seed 2012 -out city.korg [-index city.kbpt]
//	kordata -kind road -nodes 5000 -seed 2012 -out road5k.korg
//	kordata -kind grid -nodes 1000000 -out grid1m.korg -stats
//	kordata -kind road -nodes 200 -out g.korg -emit-delta patch.json
//	kordata -kind road -nodes 5000 -out road5k.korg -build-index road5k.kori
//	kordata -kind road -nodes 1000 -out city.korg -shard 2 -halo 3
//	kordata -ingest-nodes poi.nodes.csv -ingest-edges poi.edges.csv -out poi.korg
//	kordata -ingest-osm extract.tsv -out osm.korg -stats
//	kordata -kind grid -nodes 1000000 -emit-text grid1m
//
// -kind grid is the real-world-scale generator: a jittered lattice built
// through the streaming CSR path, practical at millions of nodes.
//
// -ingest-nodes/-ingest-edges read the two-file CSV text shape (node records
// "id,x,y[,keywords]", edge records "from,to,objective,budget");
// -ingest-osm reads the single-file OSM-extract TSV shape. Both stream
// through the two-pass builder — peak memory is the finished graph — and
// report parse failures with file:line locations.
//
// -emit-text <base> writes <base>.nodes.csv and <base>.edges.csv from the
// graph, the inverse of -ingest-nodes/-ingest-edges. For every kordata
// dataset the dump re-ingests to an identical fingerprint.
//
// -stats prints the memory-layout report the scale tier gates on: the
// graph's per-array footprint, bytes per node, the in-memory inverted
// index's bytes per posting, and the process peak RSS.
//
// -shard N cuts the graph into N region shards for the korrouter serving
// tier: city.shard0.korg … city.shard<N-1>.korg plus city.shardmap.json.
// Each shard graph keeps the full node set and vocabulary (global node IDs
// and Term numbering stay valid everywhere) but only the shard's closure —
// its owned partition regions plus a -halo hop border band — keeps edges
// and keywords. Boot one korserve per shard file (-role replica -shard-id
// <i>) and point korrouter at the shard map.
//
// -build-index runs the partitioned τ/σ pre-processing offline and persists
// it, so korserve -dist-index starts serving precomputed distances without
// paying the build at boot. The file is bound to the graph's fingerprint
// (printed here); korserve refuses it against any other graph.
//
// -emit-delta writes a korapi.Delta valid against the generated graph —
// attribute drift on an edge, a new keyword, a new edge — ready to POST to
// korserve's /v1/admin/patch. The delta is validated by applying it locally
// before writing, and the pre/post fingerprints are printed so a smoke test
// can assert the patch took effect.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"kor"
	"kor/internal/cluster"
	"kor/internal/gen"
	"kor/internal/graph"
	"kor/internal/textindex"
	"kor/korapi"
)

func main() {
	var (
		kind        = flag.String("kind", "flickr", "dataset kind: flickr | road | grid")
		nodes       = flag.Int("nodes", 5000, "node count for -kind road / grid")
		seed        = flag.Int64("seed", 2012, "generator seed")
		out         = flag.String("out", "", "output graph file")
		ingestNodes = flag.String("ingest-nodes", "", "ingest a CSV node file (with -ingest-edges) instead of generating")
		ingestEdges = flag.String("ingest-edges", "", "CSV edge file for -ingest-nodes")
		ingestOSM   = flag.String("ingest-osm", "", "ingest an OSM-extract TSV file instead of generating")
		emitText    = flag.String("emit-text", "", "write <base>.nodes.csv and <base>.edges.csv text dumps of the graph")
		stats       = flag.Bool("stats", false, "print the memory-layout report (footprint, bytes/node, bytes/posting, peak RSS)")
		index       = flag.String("index", "", "optional output path for the disk inverted file")
		emitDelta   = flag.String("emit-delta", "", "optional output path for a JSON live-update delta valid for the generated graph")
		distIndex   = flag.String("build-index", "", "optional output path for the persistent distance index (partitioned τ/σ tables)")
		cellSize    = flag.Int("cell-size", 0, "partition region-size cap for -build-index and -shard (0 = default)")
		shards      = flag.Int("shard", 0, "cut the graph into N region shards, writing <out-base>.shard<i>.korg plus <out-base>.shardmap.json for korrouter")
		halo        = flag.Int("halo", 2, "border halo depth for -shard: undirected BFS hops replicated beyond each shard's owned nodes")
	)
	flag.Parse()
	if *out == "" && !*stats && *emitText == "" {
		fmt.Fprintln(os.Stderr, "kordata: -out is required (or -stats / -emit-text for report-only runs)")
		flag.Usage()
		os.Exit(2)
	}
	if (*ingestNodes == "") != (*ingestEdges == "") {
		fatal(fmt.Errorf("-ingest-nodes and -ingest-edges must be given together"))
	}

	var g *kor.Graph
	switch {
	case *ingestNodes != "":
		start := time.Now()
		loaded, err := kor.LoadGraphCSV(*ingestNodes, *ingestEdges)
		if err != nil {
			fatal(err)
		}
		g = loaded
		fmt.Printf("ingested %s + %s in %v\n", *ingestNodes, *ingestEdges, time.Since(start).Round(time.Millisecond))
	case *ingestOSM != "":
		start := time.Now()
		loaded, err := kor.LoadGraphOSM(*ingestOSM)
		if err != nil {
			fatal(err)
		}
		g = loaded
		fmt.Printf("ingested %s in %v\n", *ingestOSM, time.Since(start).Round(time.Millisecond))
	default:
		switch *kind {
		case "flickr":
			world, st, err := gen.FlickrGraph(gen.FlickrConfig{Seed: *seed})
			if err != nil {
				fatal(err)
			}
			fmt.Printf("pipeline: %v\n", st)
			g = world
		case "road":
			g = kor.SyntheticRoadNetwork(*seed, *nodes)
		case "grid":
			g = kor.SyntheticGrid(*seed, *nodes)
		default:
			fatal(fmt.Errorf("unknown -kind %q (flickr, road or grid)", *kind))
		}
	}
	fmt.Printf("graph: %v\n", g.ComputeStats())

	if *out != "" {
		if err := kor.SaveGraph(*out, g); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}

	if *emitText != "" {
		if err := writeText(*emitText, g); err != nil {
			fatal(err)
		}
	}

	if *stats {
		printStats(g)
	}

	if *index != "" {
		if _, err := os.Stat(*index); err == nil {
			fatal(fmt.Errorf("index file %s already exists", *index))
		}
		gi, err := textindex.BuildForGraph(*index, g)
		if err != nil {
			fatal(err)
		}
		if err := gi.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *index)
	}

	if *distIndex != "" {
		start := time.Now()
		info, err := kor.WriteDistIndex(*distIndex, g, *cellSize)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (fingerprint %016x, %d regions, %d borders, %s, built in %v)\n",
			*distIndex, info.Fingerprint, info.Regions, info.Borders,
			formatBytes(info.Bytes), time.Since(start).Round(time.Millisecond))
	}

	if *emitDelta != "" {
		if err := writeDelta(*emitDelta, g); err != nil {
			fatal(err)
		}
	}

	if *shards > 0 {
		if err := writeShards(*out, g, *shards, *cellSize, *halo); err != nil {
			fatal(err)
		}
	}
}

// writeShards cuts g into region shards and writes one graph file per shard
// plus the shard map korrouter boots from. File names derive from the main
// output path: city.korg → city.shard0.korg … plus city.shardmap.json.
func writeShards(outPath string, g *kor.Graph, shards, cellSize, halo int) error {
	cut, err := cluster.CutGraph(g, cluster.CutConfig{Shards: shards, CellSize: cellSize, Halo: halo})
	if err != nil {
		return err
	}
	base := strings.TrimSuffix(outPath, filepath.Ext(outPath))
	for i, sg := range cut.Graphs {
		name := fmt.Sprintf("%s.shard%d.korg", base, i)
		if err := kor.SaveGraph(name, sg); err != nil {
			return err
		}
		cut.Map.Shards[i].Graph = filepath.Base(name)
		info := cut.Map.Shards[i]
		fmt.Printf("wrote %s (shard %d: %d owned, %d closure, %d edges, %d keywords, fingerprint %s)\n",
			name, i, info.Owned, info.Closure, info.Edges, len(info.Keywords), info.Fingerprint)
	}
	mapPath := base + ".shardmap.json"
	if err := cut.Map.Save(mapPath); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d shards, halo %d, full fingerprint %s)\n",
		mapPath, len(cut.Map.Shards), cut.Map.Halo, cut.Map.FullFingerprint)
	return nil
}

// writeText dumps g as the two-file CSV ingest shape: <base>.nodes.csv and
// <base>.edges.csv. Node ids are the dense NodeIDs; keyword names come from
// the vocabulary; edges follow CSR order, so re-ingesting reproduces the
// forward CSR byte for byte and with it the fingerprint (display names are
// not part of the text shape and are dropped).
func writeText(base string, g *kor.Graph) error {
	nodesPath, edgesPath := base+".nodes.csv", base+".edges.csv"

	nf, err := os.Create(nodesPath)
	if err != nil {
		return err
	}
	nw := bufio.NewWriterSize(nf, 1<<20)
	fmt.Fprintln(nw, "# id,x,y,keywords")
	vocab := g.Vocab()
	for v := kor.NodeID(0); int(v) < g.NumNodes(); v++ {
		p := g.Position(v)
		nw.WriteString(strconv.Itoa(int(v)))
		nw.WriteByte(',')
		nw.WriteString(strconv.FormatFloat(p.X, 'g', -1, 64))
		nw.WriteByte(',')
		nw.WriteString(strconv.FormatFloat(p.Y, 'g', -1, 64))
		nw.WriteByte(',')
		for i, t := range g.Terms(v) {
			if i > 0 {
				nw.WriteByte(';')
			}
			nw.WriteString(vocab.Name(t))
		}
		nw.WriteByte('\n')
	}
	if err := nw.Flush(); err != nil {
		nf.Close()
		return err
	}
	if err := nf.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", nodesPath)

	ef, err := os.Create(edgesPath)
	if err != nil {
		return err
	}
	ew := bufio.NewWriterSize(ef, 1<<20)
	fmt.Fprintln(ew, "# from,to,objective,budget")
	for v := kor.NodeID(0); int(v) < g.NumNodes(); v++ {
		for _, e := range g.Out(v) {
			ew.WriteString(strconv.Itoa(int(v)))
			ew.WriteByte(',')
			ew.WriteString(strconv.Itoa(int(e.To)))
			ew.WriteByte(',')
			ew.WriteString(strconv.FormatFloat(e.Objective, 'g', -1, 64))
			ew.WriteByte(',')
			ew.WriteString(strconv.FormatFloat(e.Budget, 'g', -1, 64))
			ew.WriteByte('\n')
		}
	}
	if err := ew.Flush(); err != nil {
		ef.Close()
		return err
	}
	if err := ef.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", edgesPath)
	return nil
}

// printStats reports the memory layout: the graph's storage-array breakdown,
// the inverted index's posting compression, and the process peak RSS.
func printStats(g *kor.Graph) {
	f := g.MemFootprint()
	fmt.Printf("layout: %v\n", f)
	fmt.Printf("layout: graph %s, %.1f bytes/node\n", formatBytes(f.TotalBytes), f.BytesPerNode())
	idx := graph.NewMemIndex(g)
	if n := idx.NumPostings(); n > 0 {
		fmt.Printf("layout: index %s, %d postings, %.2f bytes/posting\n",
			formatBytes(idx.FootprintBytes()), n, float64(idx.FootprintBytes())/float64(n))
	}
	if hwm, ok := peakRSSBytes(); ok {
		fmt.Printf("layout: peak RSS %s\n", formatBytes(hwm))
	}
}

// formatBytes renders a byte count with a binary unit suffix.
func formatBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%d B", n)
}

// writeDelta emits a small deterministic delta that is valid for g: the
// first edge's objective drifts by 10%, node 0 gains a keyword new to the
// vocabulary, and the first absent node pair gains an edge. The delta is
// applied locally before writing — an emitted file that korserve would
// reject is a bug here, not there.
func writeDelta(path string, g *kor.Graph) error {
	var d korapi.Delta
	for v := kor.NodeID(0); int(v) < g.NumNodes(); v++ {
		if out := g.Out(v); len(out) > 0 {
			d.UpdateEdges = append(d.UpdateEdges, korapi.DeltaEdge{
				From: int64(v), To: int64(out[0].To),
				Objective: out[0].Objective * 1.1,
				Budget:    out[0].Budget,
			})
			break
		}
	}
	d.AddKeywords = append(d.AddKeywords, korapi.DeltaKeywords{
		Node: 0, Keywords: []string{"kordata_patch_marker"},
	})
addEdge:
	for from := kor.NodeID(0); int(from) < g.NumNodes(); from++ {
		for to := kor.NodeID(g.NumNodes() - 1); to > from; to-- {
			present := false
			for _, e := range g.Out(from) {
				if e.To == to {
					present = true
					break
				}
			}
			if !present {
				d.AddEdges = append(d.AddEdges, korapi.DeltaEdge{
					From: int64(from), To: int64(to),
					Objective: g.MaxObjective(), Budget: g.MaxBudget(),
				})
				break addEdge
			}
		}
	}

	kd, err := d.KorDelta()
	if err != nil {
		return err
	}
	patched, err := g.Apply(kd)
	if err != nil {
		return fmt.Errorf("emitted delta does not apply: %w", err)
	}
	buf, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (fingerprint %016x → %016x)\n", path, g.Fingerprint(), patched.Fingerprint())
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kordata:", err)
	os.Exit(1)
}
