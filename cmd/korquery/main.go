// Command korquery answers one KOR query against a saved dataset.
//
// Usage:
//
//	korquery -graph city.korg -from 12 -to 80 -keywords cafe,jazz -delta 6 \
//	         [-algo bucketbound|osscaling|greedy|topk|exact|bruteforce] \
//	         [-k 3] [-epsilon 0.5]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"kor"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "graph file written by kordata (required)")
		from      = flag.Int("from", 0, "source node id")
		to        = flag.Int("to", 0, "target node id")
		keywords  = flag.String("keywords", "", "comma-separated query keywords (required)")
		delta     = flag.Float64("delta", 0, "budget limit Δ (required, > 0)")
		algo      = flag.String("algo", "", "algorithm: bucketbound (default) | osscaling | greedy | topk | exact | bruteforce")
		k         = flag.Int("k", 1, "top-k routes (label algorithms)")
		epsilon   = flag.Float64("epsilon", 0.5, "scaling parameter ε")
		beta      = flag.Float64("beta", 1.2, "bucket base β")
		alpha     = flag.Float64("alpha", 0.5, "greedy balance α")
		width     = flag.Int("width", 1, "greedy beam width (1 or 2)")
		metrics   = flag.Bool("metrics", false, "print search work counters")
		timeout   = flag.Duration("timeout", 0, "abort the search after this long (0 = no limit)")
	)
	flag.Parse()
	if *graphPath == "" || *keywords == "" || *delta <= 0 {
		fmt.Fprintln(os.Stderr, "korquery: -graph, -keywords and -delta are required")
		flag.Usage()
		os.Exit(2)
	}
	algorithm, err := kor.ParseAlgorithm(*algo)
	if err != nil {
		fatal(err)
	}

	g, err := kor.LoadGraph(*graphPath)
	if err != nil {
		fatal(err)
	}
	eng, err := kor.NewEngine(g, nil)
	if err != nil {
		fatal(err)
	}

	opts := kor.DefaultOptions()
	opts.Epsilon = *epsilon
	opts.Beta = *beta
	opts.Alpha = *alpha
	opts.Width = *width

	// Ctrl-C (or -timeout) aborts the search cleanly through its context —
	// the exact search especially can run effectively forever on the wrong
	// query.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	resp, err := eng.Run(ctx, kor.Request{
		From:      kor.NodeID(*from),
		To:        kor.NodeID(*to),
		Keywords:  splitKeywords(*keywords),
		Budget:    *delta,
		Algorithm: algorithm,
		K:         *k,
		Options:   &opts,
	})
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		fmt.Fprintln(os.Stderr, "korquery: search timed out")
		os.Exit(1)
	case errors.Is(err, context.Canceled):
		fmt.Fprintln(os.Stderr, "korquery: search interrupted")
		os.Exit(1)
	case errors.Is(err, kor.ErrNoRoute):
		fmt.Println("no feasible route exists")
		os.Exit(1)
	case errors.Is(err, kor.ErrBudgetExceeded):
		fmt.Println("greedy covered the keywords but exceeded Δ:")
	case err != nil:
		fatal(err)
	}

	for i, r := range resp.Routes {
		if len(resp.Routes) > 1 {
			fmt.Printf("%d. ", i+1)
		}
		fmt.Println(eng.Describe(r))
	}
	if *metrics {
		if resp.Bound > 0 {
			fmt.Printf("algorithm: %s (objective within %.3gx of optimal), %v\n",
				resp.Algorithm, resp.Bound, resp.Elapsed)
		} else {
			fmt.Printf("algorithm: %s (no approximation guarantee), %v\n",
				resp.Algorithm, resp.Elapsed)
		}
		fmt.Printf("metrics: %+v\n", resp.Metrics)
	}
}

func splitKeywords(s string) []string {
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "korquery:", err)
	os.Exit(1)
}
