package kor

import (
	"context"
	"errors"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"kor/internal/core"
)

// Tests for the snapshot subsystem: Engine.Swap and Engine.Patch must be
// atomic (in-flight queries finish on the snapshot they started with, new
// queries see the new graph), the result cache must never serve an answer
// across a fingerprint change, and swaps must evict the dead entries. Run
// with -race: TestSwapUnderLoad races queries against swaps and patches.

// swapCity builds the cache_test city with a configurable objective on the
// hotel→cafe edge, so two graphs differing only in that attribute give
// different best objectives for the reference request below.
func swapCity(t testing.TB, obj01 float64) *Graph {
	t.Helper()
	b := NewBuilder()
	b.AddNode("hotel")          // 0
	b.AddNode("cafe", "jazz")   // 1
	b.AddNode("park")           // 2
	b.AddNode("museum", "jazz") // 3
	edges := []struct {
		from, to NodeID
		o, c     float64
	}{
		{0, 1, obj01, 1.2}, {1, 2, 0.3, 0.8}, {2, 0, 0.5, 1.0},
		{0, 3, 0.9, 0.9}, {3, 2, 0.4, 1.1}, {2, 3, 0.4, 1.1},
		{1, 3, 0.6, 0.7}, {3, 1, 0.6, 0.7},
	}
	for _, e := range edges {
		if err := b.AddEdge(e.from, e.to, e.o, e.c); err != nil {
			t.Fatalf("AddEdge: %v", err)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

// swapRequest is the reference query: best route 0→1→2, objective
// obj01 + 0.3.
func swapRequest() Request {
	return Request{From: 0, To: 2, Keywords: []string{"jazz"}, Budget: 6}
}

func TestSwapServesNewGraph(t *testing.T) {
	gA, gB := swapCity(t, 0.7), swapCity(t, 0.1)
	eng, err := NewEngine(gA, nil)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	before, err := eng.Run(context.Background(), swapRequest())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if before.Best().Objective != 1.0 {
		t.Fatalf("objective = %v, want 1.0", before.Best().Objective)
	}
	if before.Snapshot.Fingerprint != gA.Fingerprint() || before.Snapshot.Generation != 1 {
		t.Fatalf("snapshot = %+v, want gA generation 1", before.Snapshot)
	}

	info, err := eng.Swap(gB)
	if err != nil {
		t.Fatalf("Swap: %v", err)
	}
	if info.Generation != 2 || info.Fingerprint != gB.Fingerprint() {
		t.Fatalf("swap info = %+v", info)
	}
	if eng.Graph() != gB {
		t.Fatal("Graph() does not return the swapped graph")
	}
	after, err := eng.Run(context.Background(), swapRequest())
	if err != nil {
		t.Fatalf("Run after swap: %v", err)
	}
	if after.Best().Objective != 0.4 {
		t.Fatalf("post-swap objective = %v, want 0.4", after.Best().Objective)
	}
	if after.Snapshot.Fingerprint != gB.Fingerprint() {
		t.Fatalf("post-swap snapshot = %+v", after.Snapshot)
	}
	if before.Graph() != gA || after.Graph() != gB {
		t.Fatal("Response.Graph() does not pin the computing snapshot's graph")
	}
}

func TestPatchAppliesDelta(t *testing.T) {
	eng, err := NewEngine(swapCity(t, 0.7), nil)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	info, err := eng.Patch(Delta{UpdateEdges: []EdgePatch{{From: 0, To: 1, Objective: 0.1, Budget: 1.2}}})
	if err != nil {
		t.Fatalf("Patch: %v", err)
	}
	if info.Generation != 2 {
		t.Fatalf("generation = %d, want 2", info.Generation)
	}
	// The patched graph has the content of swapCity(0.1) — byte-identical
	// CSR layout, so the fingerprints must agree.
	if want := swapCity(t, 0.1).Fingerprint(); info.Fingerprint != want {
		t.Fatalf("fingerprint = %x, want %x", info.Fingerprint, want)
	}
	resp, err := eng.Run(context.Background(), swapRequest())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if resp.Best().Objective != 0.4 {
		t.Fatalf("objective = %v, want 0.4", resp.Best().Objective)
	}

	// An empty delta is a no-op: same snapshot, no generation bump.
	same, err := eng.Patch(Delta{})
	if err != nil {
		t.Fatalf("empty Patch: %v", err)
	}
	if same != info {
		t.Fatalf("empty patch moved the snapshot: %+v vs %+v", same, info)
	}

	// A bad delta leaves the snapshot in place and wraps ErrBadDelta.
	if _, err := eng.Patch(Delta{RemoveEdges: []EdgeRef{{From: 1, To: 0}}}); !errors.Is(err, ErrBadDelta) {
		t.Fatalf("bad patch err = %v, want ErrBadDelta", err)
	}
	if eng.Snapshot() != info {
		t.Fatal("failed patch changed the snapshot")
	}
}

// TestInFlightQueryFinishesOnOldSnapshot holds a query mid-search with a
// blocking tracer, swaps the graph underneath it, and verifies the query
// completes against the snapshot it started on while the next query sees
// the new graph.
func TestInFlightQueryFinishesOnOldSnapshot(t *testing.T) {
	gA, gB := swapCity(t, 0.7), swapCity(t, 0.1)
	eng, err := NewEngine(gA, nil)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}

	tr := &blockingTracer{started: make(chan struct{}), release: make(chan struct{})}
	opts := DefaultOptions()
	opts.Tracer = tr
	req := swapRequest()
	req.Options = &opts

	type outcome struct {
		resp Response
		err  error
	}
	done := make(chan outcome, 1)
	go func() {
		resp, err := eng.Run(context.Background(), req)
		done <- outcome{resp, err}
	}()

	<-tr.started // the search is now between label expansions
	if _, err := eng.Swap(gB); err != nil {
		t.Fatalf("Swap: %v", err)
	}
	close(tr.release)

	got := <-done
	if got.err != nil {
		t.Fatalf("in-flight Run: %v", got.err)
	}
	if got.resp.Snapshot.Fingerprint != gA.Fingerprint() {
		t.Fatalf("in-flight query snapshot = %x, want the pre-swap %x", got.resp.Snapshot.Fingerprint, gA.Fingerprint())
	}
	if got.resp.Best().Objective != 1.0 {
		t.Fatalf("in-flight objective = %v, want the pre-swap 1.0", got.resp.Best().Objective)
	}
	// Response.Graph pins the graph that computed the routes: rendering the
	// in-flight response (names, positions, GeoJSON) must use gA even
	// though the engine has moved on — Engine.Graph() already returns gB.
	if got.resp.Graph() != gA {
		t.Fatal("in-flight Response.Graph() is not the pre-swap graph")
	}
	if eng.Graph() != gB {
		t.Fatal("Engine.Graph() did not move to the swapped graph")
	}

	fresh, err := eng.Run(context.Background(), swapRequest())
	if err != nil {
		t.Fatalf("post-swap Run: %v", err)
	}
	if fresh.Best().Objective != 0.4 || fresh.Snapshot.Fingerprint != gB.Fingerprint() {
		t.Fatalf("post-swap response = %v on %x", fresh.Best().Objective, fresh.Snapshot.Fingerprint)
	}
}

// blockingTracer signals the first label event and then blocks every event
// until released, pinning a search mid-flight.
type blockingTracer struct {
	started chan struct{}
	release chan struct{}
	once    sync.Once
}

func (bt *blockingTracer) Trace(core.TraceEvent) {
	bt.once.Do(func() { close(bt.started) })
	<-bt.release
}

// TestSwapEvictsCache: a swap clears the result cache — the old entries are
// unreachable (their keys carry the dead fingerprint) and must stop
// occupying LRU capacity — and the same request misses, recomputes on the
// new graph, and re-caches.
func TestSwapEvictsCache(t *testing.T) {
	gA, gB := swapCity(t, 0.7), swapCity(t, 0.1)
	eng, err := NewEngine(gA, &EngineConfig{CacheSize: 64})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	req := swapRequest()
	if _, err := eng.Run(context.Background(), req); err != nil {
		t.Fatalf("warm: %v", err)
	}
	warm, _ := eng.CacheStats()
	if warm.Size != 1 {
		t.Fatalf("size = %d before swap, want 1", warm.Size)
	}

	if _, err := eng.Swap(gB); err != nil {
		t.Fatalf("Swap: %v", err)
	}
	st, _ := eng.CacheStats()
	if st.Size != 0 {
		t.Fatalf("size = %d after swap, want 0 (evict-on-swap)", st.Size)
	}
	if st.Evictions != warm.Evictions {
		t.Fatalf("evictions = %d, want %d unchanged (a swap flush is not LRU pressure)", st.Evictions, warm.Evictions)
	}

	// The identical request must not be served from the pre-swap cache.
	resp, err := eng.Run(context.Background(), req)
	if err != nil {
		t.Fatalf("post-swap Run: %v", err)
	}
	if resp.Cached {
		t.Fatal("post-swap query served from the pre-swap cache")
	}
	if resp.Best().Objective != 0.4 {
		t.Fatalf("post-swap objective = %v, want 0.4", resp.Best().Objective)
	}
	hit, err := eng.Run(context.Background(), req)
	if err != nil {
		t.Fatalf("post-swap rerun: %v", err)
	}
	if !hit.Cached || hit.Best().Objective != 0.4 {
		t.Fatalf("post-swap rerun = cached %v objective %v", hit.Cached, hit.Best().Objective)
	}
	// Swapping back to the original content also starts cold: eviction is
	// by swap, not by fingerprint comparison.
	if _, err := eng.Swap(gA); err != nil {
		t.Fatalf("swap back: %v", err)
	}
	back, err := eng.Run(context.Background(), req)
	if err != nil {
		t.Fatalf("swap-back Run: %v", err)
	}
	if back.Cached || back.Best().Objective != 1.0 {
		t.Fatalf("swap-back response = cached %v objective %v, want fresh 1.0", back.Cached, back.Best().Objective)
	}
}

// TestSwapUnderLoad races queries against Swap and Patch (run with -race).
// Every response must be internally consistent: the objective must be the
// right answer for the exact snapshot fingerprint the response reports,
// whether it came from a search or from the cache — which proves a cached
// entry is never served across a fingerprint change.
func TestSwapUnderLoad(t *testing.T) {
	gA, gB, gC := swapCity(t, 0.7), swapCity(t, 0.1), swapCity(t, 0.5)
	want := map[uint64]float64{
		gA.Fingerprint(): 1.0,
		gB.Fingerprint(): 0.4,
		gC.Fingerprint(): 0.8,
	}
	eng, err := NewEngine(gA, &EngineConfig{CacheSize: 128})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	req := swapRequest()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := eng.Run(context.Background(), req)
				if err != nil {
					t.Errorf("Run: %v", err)
					return
				}
				wantObj, ok := want[resp.Snapshot.Fingerprint]
				if !ok {
					t.Errorf("response reports unknown fingerprint %x", resp.Snapshot.Fingerprint)
					return
				}
				if got := resp.Best().Objective; got != wantObj {
					t.Errorf("objective %v for fingerprint %x (cached=%v), want %v — answer served across a snapshot change",
						got, resp.Snapshot.Fingerprint, resp.Cached, wantObj)
					return
				}
			}
		}()
	}

	// Interleave whole-graph swaps with incremental patches.
	for i := 0; i < 30 && !t.Failed(); i++ {
		var err error
		switch i % 3 {
		case 0:
			_, err = eng.Swap(gB)
		case 1:
			_, err = eng.Patch(Delta{UpdateEdges: []EdgePatch{{From: 0, To: 1, Objective: 0.5, Budget: 1.2}}})
		case 2:
			_, err = eng.Swap(gA)
		}
		if err != nil {
			t.Errorf("swap %d: %v", i, err)
			break
		}
		time.Sleep(500 * time.Microsecond)
	}
	close(stop)
	wg.Wait()

	if info := eng.Snapshot(); info.Generation < 30 {
		t.Errorf("generation = %d, want ≥ 30 after 30 swaps", info.Generation)
	}
}

// TestStaticIndexRejectsSwap: an engine bound to a disk-resident inverted
// file cannot follow live updates; both mutation paths say so.
func TestStaticIndexRejectsSwap(t *testing.T) {
	dir := t.TempDir()
	eng, err := NewEngine(swapCity(t, 0.7), &EngineConfig{IndexPath: filepath.Join(dir, "city.kbpt")})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	defer eng.Close()
	if _, err := eng.Swap(swapCity(t, 0.1)); !errors.Is(err, ErrStaticIndex) {
		t.Fatalf("Swap err = %v, want ErrStaticIndex", err)
	}
	d := Delta{UpdateEdges: []EdgePatch{{From: 0, To: 1, Objective: 0.2, Budget: 1.2}}}
	if _, err := eng.Patch(d); !errors.Is(err, ErrStaticIndex) {
		t.Fatalf("Patch err = %v, want ErrStaticIndex", err)
	}
	if eng.Snapshot().Generation != 1 {
		t.Fatal("rejected mutation still moved the snapshot")
	}
}

// TestEngineStatsPerSnapshot: Stats is memoized per snapshot and tracks
// swaps — the graph summary and the snapshot identity come from one
// consistent read.
func TestEngineStatsPerSnapshot(t *testing.T) {
	eng, err := NewEngine(swapCity(t, 0.7), nil)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	st1, info1 := eng.Stats()
	if st1.Nodes != 4 || st1.Edges != 8 || info1.Generation != 1 {
		t.Fatalf("stats = %+v %+v", st1, info1)
	}
	if again, _ := eng.Stats(); again != st1 {
		t.Fatalf("repeated Stats differ: %+v vs %+v", again, st1)
	}

	if _, err := eng.Patch(Delta{AddEdges: []EdgePatch{{From: 2, To: 1, Objective: 0.2, Budget: 0.2}}}); err != nil {
		t.Fatalf("Patch: %v", err)
	}
	st2, info2 := eng.Stats()
	if st2.Edges != 9 || info2.Generation != 2 {
		t.Fatalf("post-patch stats = %+v %+v, want 9 edges at generation 2", st2, info2)
	}
	if st2.MinObjective != 0.2 {
		t.Fatalf("post-patch MinObjective = %v, want 0.2", st2.MinObjective)
	}
}
