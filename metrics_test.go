package kor

import (
	"context"
	"strconv"
	"strings"
	"testing"
	"time"

	"kor/internal/metrics"
)

// metricsTestEngine builds the façade test city engine with a registry and a
// small cache attached.
func metricsTestEngine(t *testing.T) (*Engine, *metrics.Registry) {
	t.Helper()
	b := NewBuilder()
	hotel := b.AddNode("hotel")
	cafe := b.AddNode("cafe", "jazz")
	park := b.AddNode("park")
	if err := b.AddEdge(hotel, cafe, 0.7, 1.2); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(cafe, park, 0.3, 0.8); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(park, hotel, 0.5, 1.0); err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	eng, err := NewEngine(b.MustBuild(), &EngineConfig{CacheSize: 16, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	return eng, reg
}

func exposition(t *testing.T, reg *metrics.Registry) string {
	t.Helper()
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// TestEngineMetrics drives Run through its outcome classes and checks the
// registry reflects each: per-algorithm/outcome totals, latency histogram
// counts, cache hit/miss, and the snapshot-generation gauge following Patch.
func TestEngineMetrics(t *testing.T) {
	eng, reg := metricsTestEngine(t)
	ctx := context.Background()

	ok := Request{From: 0, To: 0, Keywords: []string{"jazz"}, Budget: 4}
	if _, err := eng.Run(ctx, ok); err != nil {
		t.Fatal(err)
	}
	// Identical request again: a cache hit, still counted as an ok request.
	if resp, err := eng.Run(ctx, ok); err != nil || !resp.Cached {
		t.Fatalf("second run cached=%v err=%v, want cached hit", resp.Cached, err)
	}
	// Infeasible budget → no_route.
	if _, err := eng.Run(ctx, Request{From: 0, To: 2, Keywords: []string{"jazz"}, Budget: 0.01}); err == nil {
		t.Fatal("expected no_route error")
	}
	// Unknown keyword fails before the search but after algorithm resolution.
	if _, err := eng.Run(ctx, Request{From: 0, To: 2, Keywords: []string{"spa"}, Budget: 4}); err == nil {
		t.Fatal("expected unknown keyword error")
	}
	// Unknown algorithm fails before anything is resolved.
	if _, err := eng.Run(ctx, Request{From: 0, To: 2, Keywords: []string{"jazz"}, Budget: 4, Algorithm: "warp"}); err == nil {
		t.Fatal("expected unknown algorithm error")
	}

	out := exposition(t, reg)
	for _, want := range []string{
		`kor_engine_requests_total{algorithm="bucketbound",outcome="ok"} 2`,
		`kor_engine_requests_total{algorithm="bucketbound",outcome="no_route"} 1`,
		`kor_engine_requests_total{algorithm="bucketbound",outcome="unknown_keyword"} 1`,
		`kor_engine_requests_total{algorithm="invalid",outcome="bad_query"} 1`,
		`kor_engine_cache_requests_total{result="hit"} 1`,
		`kor_engine_cache_requests_total{result="miss"} 2`,
		`kor_engine_cache_size 2`,
		`kor_engine_snapshot_generation 1`,
		`kor_engine_request_seconds_count{algorithm="bucketbound"} 4`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("full exposition:\n%s", out)
	}

	// A patch advances the generation gauge and empties the cache gauge.
	if _, err := eng.Patch(Delta{AddKeywords: []KeywordPatch{{Node: 2, Keywords: []string{"view"}}}}); err != nil {
		t.Fatal(err)
	}
	out = exposition(t, reg)
	if !strings.Contains(out, "kor_engine_snapshot_generation 2\n") {
		t.Errorf("generation gauge did not follow the patch:\n%s", out)
	}
	if !strings.Contains(out, "kor_engine_cache_size 0\n") {
		t.Errorf("cache size gauge did not reflect the swap flush:\n%s", out)
	}
}

// gaugeValue extracts a plain (unlabelled) gauge's value from an exposition.
func gaugeValue(t *testing.T, out, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(out, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				t.Fatalf("gauge %s carries unparseable value %q", name, rest)
			}
			return v
		}
	}
	t.Fatalf("gauge %s missing from exposition:\n%s", name, out)
	return 0
}

// TestOracleDegradedSecondsGauge: the episode-age gauge is 0 while the disk
// oracle serves, climbs once a patch degrades it, and resets on recovery.
func TestOracleDegradedSecondsGauge(t *testing.T) {
	g := swapCity(t, 0.7)
	path := buildDistIndex(t, g)
	reg := metrics.NewRegistry()
	eng, err := NewEngine(g, &EngineConfig{DistIndexPath: path, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	if v := gaugeValue(t, exposition(t, reg), "kor_engine_oracle_degraded_seconds"); v != 0 {
		t.Fatalf("healthy engine reports degraded for %vs", v)
	}

	if _, err := eng.Patch(Delta{UpdateEdges: []EdgePatch{{From: 0, To: 1, Objective: 0.1, Budget: 1.2}}}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond)
	out := exposition(t, reg)
	if !strings.Contains(out, "kor_engine_oracle_degraded 1\n") {
		t.Errorf("degraded flag gauge not set:\n%s", out)
	}
	if v := gaugeValue(t, out, "kor_engine_oracle_degraded_seconds"); v <= 0 {
		t.Errorf("degraded_seconds = %v after a degrading patch, want > 0", v)
	}

	if _, err := eng.Swap(swapCity(t, 0.7)); err != nil {
		t.Fatal(err)
	}
	if v := gaugeValue(t, exposition(t, reg), "kor_engine_oracle_degraded_seconds"); v != 0 {
		t.Errorf("degraded_seconds = %v after recovery, want 0", v)
	}
}

// TestEngineMetricsCoalesced: coalesced responses surface in the cache-lookup
// series under their own label — not as misses — and the plan-sweep counter
// reflects the single search the whole stampede paid for. Batch duplicates
// are counted the same way.
func TestEngineMetricsCoalesced(t *testing.T) {
	eng, reg := metricsTestEngine(t)
	req := Request{From: 0, To: 0, Keywords: []string{"jazz"}, Budget: 4}
	const followers = 3

	release := make(chan struct{})
	parked, searches := parkFirstSearch(eng, release)
	done := make(chan error, followers+1)
	run := func() {
		_, err := eng.Run(context.Background(), req)
		done <- err
	}
	go run()
	<-parked
	for i := 0; i < followers; i++ {
		go run()
	}
	awaitWaiters(t, eng, followers)
	close(release)
	for i := 0; i < followers+1; i++ {
		if err := <-done; err != nil {
			t.Fatalf("Run: %v", err)
		}
	}
	if searches.Load() != 1 {
		t.Fatalf("%d searches executed, want 1", searches.Load())
	}

	// A batch of two identical requests: the representative hits the warm
	// cache, the duplicate is coalesced by the batch layer without ever
	// entering Run.
	if _, err := eng.SearchBatch(context.Background(), []Request{req, req}, 2); err != nil {
		t.Fatalf("SearchBatch: %v", err)
	}

	out := exposition(t, reg)
	for _, want := range []string{
		`kor_engine_cache_requests_total{result="miss"} 1`,
		`kor_engine_cache_requests_total{result="coalesced"} 4`,
		`kor_engine_cache_requests_total{result="hit"} 1`,
		// Every request — stampede followers and the batch duplicate
		// included — still counts in the request totals.
		`kor_engine_requests_total{algorithm="bucketbound",outcome="ok"} 6`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("full exposition:\n%s", out)
	}

	// Plan sweeps are counted once, for the leader's search — coalesced and
	// cached responses carry the leader's Metrics but must not re-add them.
	twin, twinReg := metricsTestEngine(t)
	if _, err := twin.Run(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	got := gaugeValue(t, out, "kor_engine_plan_sweeps_total")
	want := gaugeValue(t, exposition(t, twinReg), "kor_engine_plan_sweeps_total")
	if got != want {
		t.Errorf("plan sweeps after stampede+batch = %v, want the single-search %v", got, want)
	}
}

// TestEngineMetricsDisabled: an engine without a registry must not touch any
// instrument (e.met stays nil on every path, including cache hits).
func TestEngineMetricsDisabled(t *testing.T) {
	b := NewBuilder()
	a := b.AddNode("a", "x")
	c := b.AddNode("c")
	if err := b.AddEdge(a, c, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(c, a, 1, 1); err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(b.MustBuild(), &EngineConfig{CacheSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	req := Request{From: 0, To: 1, Keywords: []string{"x"}, Budget: 5}
	for i := 0; i < 2; i++ { // second run exercises the cache-hit path
		if _, err := eng.Run(context.Background(), req); err != nil {
			t.Fatal(err)
		}
	}
}
