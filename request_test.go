package kor

import (
	"context"
	"errors"
	"testing"
)

// TestRunMatchesDeprecatedMethods checks Engine.Run gives the same answers
// as the per-algorithm methods it replaces, for every algorithm they
// exposed.
func TestRunMatchesDeprecatedMethods(t *testing.T) {
	eng, err := NewEngine(tinyCity(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	q := Query{From: 0, To: 2, Keywords: []string{"cafe"}, Budget: 5}
	req := Request{From: 0, To: 2, Keywords: []string{"cafe"}, Budget: 5}

	cases := []struct {
		algo   Algorithm
		direct func() (Result, error)
	}{
		{AlgorithmBucketBound, func() (Result, error) { return eng.BucketBound(q, DefaultOptions()) }},
		{AlgorithmOSScaling, func() (Result, error) { return eng.OSScaling(q, DefaultOptions()) }},
		{AlgorithmGreedy, func() (Result, error) { return eng.Greedy(q, DefaultOptions()) }},
		{AlgorithmExact, func() (Result, error) { return eng.Exact(q, DefaultOptions()) }},
	}
	for _, c := range cases {
		req.Algorithm = c.algo
		resp, runErr := eng.Run(context.Background(), req)
		want, directErr := c.direct()
		if (runErr == nil) != (directErr == nil) {
			t.Fatalf("%s: Run err %v, direct err %v", c.algo, runErr, directErr)
		}
		if runErr != nil {
			continue
		}
		if resp.Best().Objective != want.Best().Objective {
			t.Errorf("%s: Run %v != direct %v", c.algo, resp.Best(), want.Best())
		}
		if resp.Algorithm != c.algo {
			t.Errorf("%s: response reports algorithm %q", c.algo, resp.Algorithm)
		}
		if resp.Elapsed <= 0 {
			t.Errorf("%s: non-positive Elapsed %v", c.algo, resp.Elapsed)
		}
	}
}

func TestRunDefaultAlgorithmAndBound(t *testing.T) {
	eng, err := NewEngine(tinyCity(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := eng.Run(context.Background(), Request{
		From: 0, To: 0, Keywords: []string{"jazz", "park"}, Budget: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Algorithm != AlgorithmBucketBound {
		t.Errorf("default algorithm = %q, want bucketbound", resp.Algorithm)
	}
	// DefaultOptions: β/(1−ε) = 1.2/0.5 = 2.4.
	if resp.Bound < 2.39 || resp.Bound > 2.41 {
		t.Errorf("bound = %v, want 2.4", resp.Bound)
	}
	if !resp.Best().Feasible {
		t.Errorf("infeasible route %v", resp.Best())
	}
}

func TestRunTopK(t *testing.T) {
	eng, err := NewEngine(tinyCity(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Epsilon = 0.1
	resp, err := eng.Run(context.Background(), Request{
		From: 0, To: 2, Keywords: []string{"cafe"}, Budget: 6,
		Algorithm: AlgorithmTopK, K: 3, Options: &opts,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Routes) < 2 {
		t.Fatalf("top-k Run returned %d routes", len(resp.Routes))
	}
	for i := 1; i < len(resp.Routes); i++ {
		if resp.Routes[i-1].Objective > resp.Routes[i].Objective+1e-9 {
			t.Fatal("top-k routes not sorted")
		}
	}
}

// TestRunValidatesOptions: bad tuning fails fast with an ErrBadQuery wrap
// instead of silently degrading to defaults.
func TestRunValidatesOptions(t *testing.T) {
	eng, err := NewEngine(tinyCity(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	bad := DefaultOptions()
	bad.Epsilon = 1.5
	_, err = eng.Run(context.Background(), Request{
		From: 0, To: 2, Keywords: []string{"cafe"}, Budget: 5, Options: &bad,
	})
	if !errors.Is(err, ErrBadQuery) {
		t.Fatalf("bad epsilon: err = %v, want ErrBadQuery wrap", err)
	}

	zeroK := DefaultOptions()
	zeroK.K = 0
	_, err = eng.Run(context.Background(), Request{
		From: 0, To: 2, Keywords: []string{"cafe"}, Budget: 5, Options: &zeroK,
	})
	if !errors.Is(err, ErrBadQuery) {
		t.Fatalf("zero K: err = %v, want ErrBadQuery wrap", err)
	}

	// A negative Request.K must flow into validation, not be ignored.
	_, err = eng.Run(context.Background(), Request{
		From: 0, To: 2, Keywords: []string{"cafe"}, Budget: 5, K: -3,
	})
	if !errors.Is(err, ErrBadQuery) {
		t.Fatalf("negative K: err = %v, want ErrBadQuery wrap", err)
	}
}

func TestRunErrors(t *testing.T) {
	eng, err := NewEngine(tinyCity(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := eng.Run(ctx, Request{From: 0, To: 2, Keywords: []string{"cafe"}, Budget: 5, Algorithm: "warp"}); !errors.Is(err, ErrBadQuery) || !errors.Is(err, ErrUnknownAlgorithm) {
		t.Errorf("unknown algorithm: err = %v, want ErrBadQuery and ErrUnknownAlgorithm", err)
	}
	if _, err := eng.Run(ctx, Request{From: 0, To: 2, Keywords: []string{"spa"}, Budget: 5}); !errors.Is(err, ErrUnknownKeyword) {
		t.Errorf("unknown keyword: err = %v, want ErrUnknownKeyword", err)
	}
	if _, err := eng.Run(ctx, Request{From: 0, To: 2, Keywords: []string{"jazz"}, Budget: 0.1}); !errors.Is(err, ErrNoRoute) {
		t.Errorf("tiny budget: err = %v, want ErrNoRoute", err)
	}
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := eng.Run(cancelled, Request{From: 0, To: 2, Keywords: []string{"cafe"}, Budget: 5}); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled ctx: err = %v, want context.Canceled", err)
	}
}

// TestSearchBatchHeterogeneous runs one batch mixing algorithms, per-request
// options and a failing request, checking each slot behaves like its
// standalone Run.
func TestSearchBatchHeterogeneous(t *testing.T) {
	eng, err := NewEngine(tinyCity(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	tight := DefaultOptions()
	tight.Epsilon = 0.1
	requests := []Request{
		{From: 0, To: 2, Keywords: []string{"cafe"}, Budget: 5},
		{From: 0, To: 2, Keywords: []string{"cafe"}, Budget: 6, Algorithm: AlgorithmTopK, K: 3, Options: &tight},
		{From: 0, To: 2, Keywords: []string{"cafe"}, Budget: 5, Algorithm: AlgorithmExact},
		{From: 0, To: 2, Keywords: []string{"spa"}, Budget: 5},
	}
	results, err := eng.SearchBatch(context.Background(), requests, 2)
	if err != nil {
		t.Fatalf("SearchBatch: %v", err)
	}
	for i, req := range requests {
		want, wantErr := eng.Run(context.Background(), req)
		got := results[i]
		if (wantErr == nil) != (got.Err == nil) {
			t.Fatalf("request %d: batch err %v, direct err %v", i, got.Err, wantErr)
		}
		if wantErr != nil {
			continue
		}
		if got.Response.Algorithm != want.Algorithm {
			t.Errorf("request %d: algorithm %q != %q", i, got.Response.Algorithm, want.Algorithm)
		}
		if len(got.Response.Routes) != len(want.Routes) {
			t.Fatalf("request %d: %d routes != %d", i, len(got.Response.Routes), len(want.Routes))
		}
		for j := range want.Routes {
			if got.Response.Routes[j].Objective != want.Routes[j].Objective {
				t.Errorf("request %d route %d: objective %v != %v", i, j,
					got.Response.Routes[j].Objective, want.Routes[j].Objective)
			}
		}
	}
	if !errors.Is(results[3].Err, ErrUnknownKeyword) {
		t.Errorf("failing slot err = %v, want ErrUnknownKeyword", results[3].Err)
	}
}
