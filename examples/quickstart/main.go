// Quickstart: build a small city graph by hand and answer the paper's
// flagship query — "the most popular route from my hotel and back that
// passes a cafe with jazz and a park, within budget".
package main

import (
	"context"
	"fmt"
	"log"

	"kor"
)

func main() {
	b := kor.NewBuilder()
	hotel := b.AddNode("hotel")
	cafe := b.AddNode("cafe", "jazz")
	park := b.AddNode("park")
	mall := b.AddNode("mall", "restaurant")
	museum := b.AddNode("museum")

	// AddEdge(from, to, objective, budget): the objective is what the query
	// minimizes (here: negated log-popularity — smaller is more popular),
	// the budget is what Δ constrains (here: kilometres).
	edges := []struct {
		from, to kor.NodeID
		obj, km  float64
	}{
		{hotel, cafe, 0.7, 1.2},
		{cafe, park, 0.3, 0.8},
		{park, hotel, 0.5, 1.0},
		{cafe, mall, 0.4, 0.5},
		{mall, park, 0.6, 0.9},
		{hotel, museum, 1.2, 0.6},
		{museum, park, 0.9, 0.7},
		{park, cafe, 0.3, 0.8},
	}
	for _, e := range edges {
		if err := b.AddEdge(e.from, e.to, e.obj, e.km); err != nil {
			log.Fatal(err)
		}
	}
	for id, name := range map[kor.NodeID]string{
		hotel: "Grand Hotel", cafe: "Blue Note Cafe", park: "Riverside Park",
		mall: "Union Mall", museum: "City Museum",
	} {
		if err := b.SetName(id, name); err != nil {
			log.Fatal(err)
		}
	}
	g := b.MustBuild()

	eng, err := kor.NewEngine(g, nil)
	if err != nil {
		log.Fatal(err)
	}

	// Run is the engine's single entry point: the request carries the whole
	// query, including which algorithm to run (the zero Algorithm picks
	// BucketBound, the paper's recommended trade-off).
	request := kor.Request{
		From:     hotel,
		To:       hotel, // round trip
		Keywords: []string{"jazz", "park"},
		Budget:   4, // km
	}

	fmt.Println("query: cover {jazz, park} from the hotel and back, within 4 km")
	resp, err := eng.Run(context.Background(), request)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("best route:", eng.Describe(resp.Best()))
	fmt.Printf("found by %s within %.2gx of optimal in %v\n",
		resp.Algorithm, resp.Bound, resp.Elapsed)

	// Tighten the budget until the scenic route no longer fits.
	request.Budget = 2.5
	resp, err = eng.Run(context.Background(), request)
	if err != nil {
		fmt.Println("within 2.5 km:", err)
		return
	}
	fmt.Println("within 2.5 km:", eng.Describe(resp.Best()))
}
