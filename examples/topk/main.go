// Topk demonstrates the KkR extension (§3.5): the k best distinct routes
// for one query, so an application can offer alternatives.
package main

import (
	"context"
	"fmt"
	"log"

	"kor"
)

func main() {
	b := kor.NewBuilder()
	// A lattice with several distinct routes covering {food, art}.
	names := []struct {
		name string
		tags []string
	}{
		{"Station", nil},
		{"Noodle Bar", []string{"food"}},
		{"Bistro", []string{"food"}},
		{"Gallery", []string{"art"}},
		{"Sculpture Garden", []string{"art"}},
		{"Terminal", nil},
	}
	ids := make([]kor.NodeID, len(names))
	for i, n := range names {
		ids[i] = b.AddNode(n.tags...)
		if err := b.SetName(ids[i], n.name); err != nil {
			log.Fatal(err)
		}
	}
	edges := []struct {
		from, to int
		obj, bud float64
	}{
		{0, 1, 1.0, 1.0}, {0, 2, 1.4, 0.8},
		{1, 3, 1.0, 1.0}, {1, 4, 1.6, 0.9}, {2, 3, 1.1, 1.1}, {2, 4, 1.2, 1.0},
		{3, 5, 1.0, 1.0}, {4, 5, 0.9, 1.2},
		{1, 2, 0.5, 0.4}, {3, 4, 0.5, 0.4},
	}
	for _, e := range edges {
		if err := b.AddEdge(ids[e.from], ids[e.to], e.obj, e.bud); err != nil {
			log.Fatal(err)
		}
	}
	eng, err := kor.NewEngine(b.MustBuild(), nil)
	if err != nil {
		log.Fatal(err)
	}

	opts := kor.DefaultOptions()
	opts.Epsilon = 0.1 // tight scaling: rank alternatives accurately
	resp, err := eng.Run(context.Background(), kor.Request{
		From:      ids[0],
		To:        ids[5],
		Keywords:  []string{"food", "art"},
		Budget:    5,
		Algorithm: kor.AlgorithmTopK,
		K:         4,
		Options:   &opts,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("top %d routes from Station to Terminal covering {food, art}, Δ=5:\n", len(resp.Routes))
	for i, r := range resp.Routes {
		fmt.Printf("%d. %s\n", i+1, eng.Describe(r))
	}
}
