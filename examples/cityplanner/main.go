// Cityplanner replays the paper's §4.2.7 demonstration on the synthetic
// city: one day-trip query posed with a generous and then a tight distance
// budget, showing the returned most-popular route change — and compares all
// three algorithm families on the same query.
package main

import (
	"errors"
	"fmt"
	"log"
	"sort"

	"kor"
)

func main() {
	fmt.Println("generating the synthetic city (photo world → trip graph)...")
	g, err := kor.SyntheticCity(2012)
	if err != nil {
		log.Fatal(err)
	}
	st := g.ComputeStats()
	fmt.Printf("city: %d locations, %d trip edges, %d tags\n\n", st.Nodes, st.Edges, st.Terms)

	eng, err := kor.NewEngine(g, nil)
	if err != nil {
		log.Fatal(err)
	}

	// Find a query exhibiting the paper's §4.2.7 effect: the most popular
	// covering route fits Δ=9 km but not Δ=6 km, so tightening the budget
	// changes the answer (the analogue of "jazz, imax, vegetarian,
	// cappuccino" from Dewitt Clinton Park to the UN Headquarters).
	from, to, keywords := pickScenario(g, eng)
	fmt.Printf("plan a trip %d → %d covering %v\n\n", from, to, keywords)

	for _, delta := range []float64{9, 6} {
		q := kor.Query{From: from, To: to, Keywords: keywords, Budget: delta}
		// The paper's demonstration uses OSScaling, the most accurate of
		// the approximation algorithms.
		res, err := eng.OSScaling(q, kor.DefaultOptions())
		if errors.Is(err, kor.ErrNoRoute) {
			fmt.Printf("Δ=%v km: no feasible route\n", delta)
			continue
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("Δ=%v km: %v\n", delta, res.Best())
	}

	// The same query through each algorithm, with the paper's defaults.
	q := kor.Query{From: from, To: to, Keywords: keywords, Budget: 9}
	fmt.Println("\nalgorithm comparison at Δ=9 km:")
	if res, err := eng.OSScaling(q, kor.DefaultOptions()); err == nil {
		fmt.Printf("  OSScaling   OS=%.3f BS=%.2f (labels created: %d)\n",
			res.Best().Objective, res.Best().Budget, res.Metrics.LabelsCreated)
	}
	if res, err := eng.BucketBound(q, kor.DefaultOptions()); err == nil {
		fmt.Printf("  BucketBound OS=%.3f BS=%.2f (labels created: %d)\n",
			res.Best().Objective, res.Best().Budget, res.Metrics.LabelsCreated)
	}
	opts := kor.DefaultOptions()
	opts.Width = 2
	res, err := eng.Greedy(q, opts)
	switch {
	case err == nil:
		fmt.Printf("  Greedy-2    OS=%.3f BS=%.2f\n", res.Best().Objective, res.Best().Budget)
	case errors.Is(err, kor.ErrBudgetExceeded):
		fmt.Printf("  Greedy-2    busted the budget (BS=%.2f > 9)\n", res.Best().Budget)
	default:
		fmt.Printf("  Greedy-2    failed: %v\n", err)
	}
}

// pickScenario scans for a query whose best Δ=9 route overruns 6 km while
// a different feasible route exists under Δ=6 — the crossover the paper
// demonstrates. Falls back to the first answerable query if the workload
// offers no crossover.
func pickScenario(g *kor.Graph, eng *kor.Engine) (kor.NodeID, kor.NodeID, []string) {
	// Rank tags by frequency; the scenario mixes very common tags with a
	// mid-frequency one, which forces a detour.
	counts := make(map[kor.Term]int)
	for v := kor.NodeID(0); int(v) < g.NumNodes(); v++ {
		for _, t := range g.Terms(v) {
			counts[t]++
		}
	}
	ranked := make([]kor.Term, 0, len(counts))
	for t := range counts {
		ranked = append(ranked, t)
	}
	sort.Slice(ranked, func(i, j int) bool {
		if counts[ranked[i]] != counts[ranked[j]] {
			return counts[ranked[i]] > counts[ranked[j]]
		}
		return ranked[i] < ranked[j]
	})
	name := func(i int) string { return g.Vocab().Name(ranked[i%len(ranked)]) }

	var fallbackFrom, fallbackTo kor.NodeID
	var fallbackKws []string
	for attempt := 0; attempt < 400; attempt++ {
		from := kor.NodeID((attempt * 131) % g.NumNodes())
		to := kor.NodeID((attempt*197 + 61) % g.NumNodes())
		if from == to {
			continue
		}
		d := g.Position(from).CityDistanceKm(g.Position(to))
		if d < 2 || d > 4 {
			continue
		}
		keywords := []string{name(attempt % 5), name(5 + attempt%10), name(15 + attempt%25)}
		wide, err := eng.OSScaling(kor.Query{From: from, To: to, Keywords: keywords, Budget: 9}, kor.DefaultOptions())
		if err != nil {
			continue
		}
		if fallbackKws == nil {
			fallbackFrom, fallbackTo, fallbackKws = from, to, keywords
		}
		if wide.Best().Budget <= 6 {
			continue // the generous route already fits the tight budget
		}
		if _, err := eng.OSScaling(kor.Query{From: from, To: to, Keywords: keywords, Budget: 6}, kor.DefaultOptions()); err != nil {
			continue // tight budget has no alternative at all
		}
		return from, to, keywords
	}
	if fallbackKws != nil {
		return fallbackFrom, fallbackTo, fallbackKws
	}
	return 0, kor.NodeID(g.NumNodes() - 1), []string{name(0), name(1), name(2)}
}
