// Roadtrip runs KOR on a synthetic road network — the paper's scalability
// setting — and contrasts the oracle implementations: dense tables versus
// lazy memoized sweeps on a graph where |V|² tables would be wasteful.
package main

import (
	"errors"
	"fmt"
	"log"
	"time"

	"kor"
)

func main() {
	const nodes = 5000
	fmt.Printf("generating a %d-node road network...\n", nodes)
	g := kor.SyntheticRoadNetwork(2012, nodes)
	st := g.ComputeStats()
	fmt.Printf("network: %d nodes, %d edges, avg degree %.1f\n\n", st.Nodes, st.Edges, st.AvgOutDegree)

	// Lazy oracle: no pre-processing wall; sweeps are computed per query.
	start := time.Now()
	eng, err := kor.NewEngine(g, &kor.EngineConfig{Oracle: kor.OracleLazy})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("engine ready in %v (lazy oracle)\n", time.Since(start))

	// A cross-town errand: cover three common keyword categories within
	// 30 km of driving.
	keywords := []string{
		g.Vocab().Name(0),
		g.Vocab().Name(1),
		g.Vocab().Name(2),
	}
	q := kor.Query{From: 10, To: 4200, Keywords: keywords, Budget: 30}
	fmt.Printf("query: %d → %d covering %v within %v km\n\n", q.From, q.To, keywords, q.Budget)

	for _, algo := range []string{"BucketBound", "OSScaling", "Greedy-1"} {
		opts := kor.DefaultOptions()
		var res kor.Result
		var err error
		t0 := time.Now()
		switch algo {
		case "BucketBound":
			res, err = eng.BucketBound(q, opts)
		case "OSScaling":
			res, err = eng.OSScaling(q, opts)
		case "Greedy-1":
			res, err = eng.Greedy(q, opts)
		}
		elapsed := time.Since(t0)
		switch {
		case errors.Is(err, kor.ErrNoRoute):
			fmt.Printf("%-12s no feasible route (%v)\n", algo, elapsed)
		case errors.Is(err, kor.ErrBudgetExceeded):
			fmt.Printf("%-12s covered keywords but busted Δ (%v)\n", algo, elapsed)
		case err != nil:
			log.Fatal(err)
		default:
			r := res.Best()
			fmt.Printf("%-12s OS=%.3f BS=%.1fkm hops=%d  (%v)\n",
				algo, r.Objective, r.Budget, len(r.Nodes)-1, elapsed)
		}
	}
}
